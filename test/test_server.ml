(* Tests for the serving subsystem: the NDJSON protocol (round-trip and
   fuzz), the bounded admission queue, quantile bisection, and the
   Service itself — differential bit-identity against a plain
   [Checker.eval_query], deadline expiry mid-Sericola with unpoisoned
   caches, eviction under an in-flight request, and a full pipe session
   exercising ordering, isolation and graceful shutdown. *)

module Protocol = Server.Protocol
module Service = Server.Service

let adhoc () = Option.get (Models.Builtin.load "adhoc")

let json_str = Io.Json.to_string

let member path json =
  List.fold_left
    (fun acc key -> Option.bind acc (Io.Json.member key))
    (Some json) path

let expect_string path json =
  match Option.bind (member path json) Io.Json.to_text with
  | Some s -> s
  | None ->
    Alcotest.failf "response %s has no string at %s" (json_str json)
      (String.concat "." path)

let check_env model query deadline_ms =
  { Protocol.id = None;
    request = Protocol.Check { model; query; deadline_ms } }

let fresh_service () =
  let service = Service.create (Service.default_config ()) in
  (match Service.preload service [ "adhoc" ] with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  service

(* ------------------------------------------------------------------ *)
(* Protocol.                                                           *)

let gen_envelope =
  let open QCheck2.Gen in
  let name = oneofl [ "adhoc"; "station"; "m"; "weird name \"x\"" ] in
  let query =
    oneofl
      [ "P=? ( F[t<=2] doze )";
        "P>=0.5 ( a U[t<=1][r<=2] b )";
        "nonsense that never parses" ]
  in
  let deadline = oneofl [ None; Some 1.0; Some 250.5; Some 60000.0 ] in
  let request =
    oneof
      [ map2
          (fun model file -> Protocol.Load { model; file })
          name
          (oneofl [ None; Some "station.mrm" ]);
        map (fun model -> Protocol.Evict { model }) name;
        return Protocol.List_models;
        map3
          (fun model query deadline_ms ->
            Protocol.Check { model; query; deadline_ms })
          name query deadline;
        (let* model = name and* query = query and* deadline_ms = deadline in
         let* variable = oneofl [ Protocol.Time; Protocol.Reward ]
         and* target = float_bound_inclusive 1.0
         and* hi = oneofl [ 0.5; 24.0; 1e6 ]
         and* tolerance = oneofl [ 1e-9; 1e-6; 0.125 ] in
         return
           (Protocol.Quantile
              { model; query; variable; target; hi; tolerance; deadline_ms }));
        return Protocol.Stats;
        return Protocol.Shutdown ]
  in
  let* id = oneofl [ None; Some "req-1"; Some ""; Some "\"quoted\"\n" ]
  and* request = request in
  return { Protocol.id; request }

let protocol_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"protocol: of_json (to_json e) = Ok e"
    gen_envelope (fun env ->
      match Protocol.of_json (Protocol.to_json env) with
      | Ok env' -> Protocol.equal_envelope env env'
      | Error e -> QCheck2.Test.fail_reportf "rejected: %s" e.Protocol.message)

(* The wire round-trip additionally crosses the JSON printer/parser —
   string escaping, float formatting. *)
let protocol_wire_roundtrip =
  QCheck2.Test.make ~count:500
    ~name:"protocol: of_line (to_string (to_json e)) = Ok e" gen_envelope
    (fun env ->
      match Protocol.of_line (json_str (Protocol.to_json env)) with
      | Ok env' -> Protocol.equal_envelope env env'
      | Error e -> QCheck2.Test.fail_reportf "rejected: %s" e.Protocol.message)

let protocol_fuzz =
  QCheck2.Test.make ~count:1000 ~name:"protocol: of_line never raises"
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun line ->
      match Protocol.of_line line with
      | Ok _ | Error _ -> true)

(* Every proper prefix of a valid line (a truncated NDJSON write) must
   come back as a structured parse error, never an exception. *)
let truncated_line () =
  let full =
    {|{"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] doze )"}|}
  in
  for len = 0 to String.length full - 1 do
    match Protocol.of_line (String.sub full 0 len) with
    | Error { Protocol.code = "parse_error"; _ } -> ()
    | Error { Protocol.code; _ } ->
      Alcotest.failf "prefix %d: unexpected code %s" len code
    | Ok _ -> Alcotest.failf "prefix %d parsed" len
  done

let bad_requests () =
  let cases =
    [ ({|{"kind": "frobnicate"}|}, "bad_request");
      ({|{"kind": "check", "model": "adhoc"}|}, "bad_request");
      ({|{"kind": "check", "model": 3, "query": "x"}|}, "bad_request");
      ({|{"kind": "quantile", "model": "m", "query": "q", "variable": "z",
         "target": 0.5, "hi": 1}|}, "bad_request");
      ({|{"kind": "quantile", "model": "m", "query": "q", "variable": "t",
         "target": 1.5, "hi": 1}|}, "bad_request");
      ({|{"kind": "check", "model": "m", "query": "q", "deadline_ms": -1}|},
       "bad_request");
      ({|[1, 2]|}, "bad_request");
      ({|{"kind": "check"|}, "parse_error") ]
  in
  List.iter
    (fun (line, expected) ->
      match Protocol.of_line line with
      | Error { Protocol.code; _ } ->
        Alcotest.(check string) line expected code
      | Ok _ -> Alcotest.failf "accepted %s" line)
    cases;
  (* The id is echoed in rejections when it was readable. *)
  match Protocol.of_line {|{"kind": "frobnicate", "id": "x7"}|} with
  | Error { Protocol.error_id = Some "x7"; _ } -> ()
  | _ -> Alcotest.fail "bad_request lost the request id"

(* ------------------------------------------------------------------ *)
(* Admission queue.                                                    *)

let admission_bound () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Admission.create: bound must be >= 1") (fun () ->
      ignore (Server.Admission.create ~bound:0));
  let q = Server.Admission.create ~bound:2 in
  Alcotest.(check bool) "push 1" true (Server.Admission.try_push q 1);
  Alcotest.(check bool) "push 2" true (Server.Admission.try_push q 2);
  Alcotest.(check bool) "push 3 refused" false (Server.Admission.try_push q 3);
  (* Control markers ignore the bound and keep FIFO order. *)
  Server.Admission.push_control q 99;
  Alcotest.(check int) "length" 3 (Server.Admission.length q);
  (* Bind the pops in sequence: list elements evaluate right-to-left. *)
  let first = Server.Admission.pop q in
  let second = Server.Admission.pop q in
  let third = Server.Admission.pop q in
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 99 ] [ first; second; third ];
  Alcotest.(check bool) "drained, admits again" true
    (Server.Admission.try_push q 4)

(* ------------------------------------------------------------------ *)
(* Quantile bisection.                                                 *)

let quantile_search () =
  (* eval x = x/10 on (0, 10]: the least x with eval x >= 0.5 is 5. *)
  let evals = ref [] in
  let eval x =
    evals := x :: !evals;
    x /. 10.0
  in
  let o =
    Server.Quantile.search ~eval ~target:0.5 ~hi:10.0 ~tolerance:1e-9
  in
  (match o.Server.Quantile.value with
   | Some v -> Alcotest.(check (float 1e-8)) "least bound" 5.0 v
   | None -> Alcotest.fail "no bound found");
  Alcotest.(check int) "evaluation count" (List.length !evals)
    o.Server.Quantile.evaluations;
  List.iter (fun x -> assert (x > 0.0)) !evals;
  (* Unreachable target: reported as None with the achieved level. *)
  let o = Server.Quantile.search ~eval ~target:2.0 ~hi:10.0 ~tolerance:1e-9 in
  Alcotest.(check bool) "unreachable" true (o.Server.Quantile.value = None);
  Alcotest.(check (float 1e-12)) "achieved at hi" 1.0
    o.Server.Quantile.achieved;
  Alcotest.check_raises "hi <= 0"
    (Invalid_argument "Quantile.search: hi must be positive and finite")
    (fun () ->
      ignore (Server.Quantile.search ~eval ~target:0.5 ~hi:0.0 ~tolerance:1e-9))

(* The quantile request against the service agrees with inverting the
   checker by hand: eval at the returned bound reaches the target, and
   just below it falls short. *)
let quantile_request () =
  let service = fresh_service () in
  let response =
    Service.execute service
      { Protocol.id = None;
        request =
          Protocol.Quantile
            { model = "adhoc";
              query = "P=? ( true U[t<=1] doze )";
              variable = Protocol.Time;
              target = 0.5;
              hi = 100.0;
              tolerance = 1e-6;
              deadline_ms = None } }
  in
  let value =
    match Option.bind (member [ "value" ] response) Io.Json.to_float with
    | Some v -> v
    | None -> Alcotest.failf "no quantile value in %s" (json_str response)
  in
  let mrm, labeling, init = adhoc () in
  let ctx = Checker.make mrm labeling in
  let eval t =
    let q = Printf.sprintf "P=? ( true U[t<=%.17g] doze )" t in
    match Checker.eval_query ctx (Logic.Parser.query q) with
    | Checker.Numeric v -> Linalg.Vec.dot init v
    | Checker.Boolean _ -> Alcotest.fail "boolean verdict"
  in
  Alcotest.(check bool) "target reached at the bound" true
    (eval value >= 0.5);
  Alcotest.(check bool) "bound is tight" true
    (eval (value -. 1e-5) < 0.5)

(* ------------------------------------------------------------------ *)
(* Service semantics.                                                  *)

(* The differential claim: a served check answers bit-identically to a
   plain Checker.eval_query on a fresh context. *)
let differential_check () =
  let service = fresh_service () in
  let queries =
    [ "P=? ( F[t<=2] doze )";
      "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )";
      "P>=0.5 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )";
      "S=? ( doze )" ]
  in
  let mrm, labeling, init = adhoc () in
  let ctx = Checker.make mrm labeling in
  List.iter
    (fun text ->
      let response = Service.execute service (check_env "adhoc" text None) in
      let result =
        match member [ "result" ] response with
        | Some r -> r
        | None -> Alcotest.failf "no result in %s" (json_str response)
      in
      let reference =
        match Checker.eval_query ctx (Logic.Parser.query text) with
        | Checker.Numeric v ->
          [ ("kind", Io.Json.String "numeric");
            ("value", Io.Json.Number (Linalg.Vec.dot init v));
            ("states",
             Io.Json.List
               (Array.to_list (Array.map (fun x -> Io.Json.Number x) (Linalg.Vec.to_array v)))) ]
        | Checker.Boolean mask ->
          let ind = Array.map (fun b -> if b then 1.0 else 0.0) mask in
          [ ("kind", Io.Json.String "boolean");
            ("initial_mass", Io.Json.Number (Linalg.Vec.dot init (Linalg.Vec.of_array ind)));
            ("states",
             Io.Json.List
               (Array.to_list (Array.map (fun b -> Io.Json.Bool b) mask))) ]
      in
      (* String equality of the rendered JSON is bit-identity: Io.Json
         prints floats with round-trip precision. *)
      Alcotest.(check string) text
        (json_str (Io.Json.Object reference))
        (json_str result))
    queries

(* A deadline that fires mid-Sericola: the solve is abandoned with a
   structured error, and the interrupted run leaves no partial result
   behind — the same request re-run without a deadline matches a fresh
   service exactly. *)
let deadline_mid_sericola () =
  (* Every clock read advances time 1 ms, so a 50 ms budget expires
     after 50 cancellation polls — deep inside Sericola's layer
     recursion for this query — deterministically, with no real
     sleeping. *)
  let calls = ref 0 in
  let clock () =
    incr calls;
    float_of_int !calls *. 0.001
  in
  let service = Service.create (Service.default_config ~clock ()) in
  (match Service.preload service [ "adhoc" ] with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let query = "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )" in
  let response =
    Service.execute service (check_env "adhoc" query (Some 50.0))
  in
  Alcotest.(check string) "deadline error" "deadline_exceeded"
    (expect_string [ "error" ] response);
  (* Same request, no deadline: the caches were not poisoned by the
     cancelled solve, so the answer matches a never-cancelled service. *)
  let retry = Service.execute service (check_env "adhoc" query None) in
  let fresh = Service.execute (fresh_service ()) (check_env "adhoc" query None) in
  Alcotest.(check string) "cache not poisoned"
    (json_str fresh) (json_str retry);
  (* A deadline that was already expired on admission short-circuits
     without touching the kernels. *)
  let kernels_before = !calls in
  let expired =
    Service.execute service ~admitted:0.0 (check_env "adhoc" query (Some 1.0))
  in
  Alcotest.(check string) "expired in queue" "deadline_exceeded"
    (expect_string [ "error" ] expired);
  Alcotest.(check bool) "short-circuited" true (!calls - kernels_before < 10)

(* Evicting a model does not disturb work that already resolved its
   registry entry (the executor resolves at execution start); later
   requests see unknown_model. *)
let evict_in_flight () =
  let service = fresh_service () in
  let reg = Service.registry service in
  let entry =
    match Server.Registry.find reg "adhoc" with
    | Some e -> e
    | None -> Alcotest.fail "preloaded model missing"
  in
  let query = Logic.Parser.query "P=? ( F[t<=2] doze )" in
  let before =
    Checker.eval_query ~memo:entry.Server.Registry.memo
      entry.Server.Registry.ctx query
  in
  Alcotest.(check bool) "evict" true (Server.Registry.evict reg "adhoc");
  (* The resolved entry keeps working after eviction — in-flight
     requests finish on the state they resolved. *)
  let after =
    Checker.eval_query ~memo:entry.Server.Registry.memo
      entry.Server.Registry.ctx query
  in
  Alcotest.(check bool) "in-flight solve unaffected" true (before = after);
  Alcotest.(check bool) "gone from the registry" true
    (Server.Registry.find reg "adhoc" = None);
  let response =
    Service.execute service (check_env "adhoc" "P=? ( F[t<=2] doze )" None)
  in
  Alcotest.(check string) "later requests rejected" "unknown_model"
    (expect_string [ "error" ] response)

(* ------------------------------------------------------------------ *)
(* A full session over OS pipes: ordering, isolation, shutdown.        *)

let pipe_session () =
  let session =
    [ {|{"kind": "load", "model": "adhoc"}|};
      {|{"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] doze )", "id": "c1"}|};
      {|{"kind": "check", "model": "adhoc"|};  (* truncated line *)
      {|{"kind": "frobnicate", "id": "c2"}|};
      "";  (* blank lines are ignored *)
      {|{"kind": "evict", "model": "nope", "id": "c3"}|};
      {|{"kind": "shutdown"}|};
      {|{"kind": "list", "id": "late"}|} ]
  in
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let writer = Unix.out_channel_of_descr in_w in
  List.iter
    (fun line ->
      output_string writer line;
      output_char writer '\n')
    session;
  close_out writer;
  let service = Service.create (Service.default_config ()) in
  let input = Unix.in_channel_of_descr in_r in
  let output = Unix.out_channel_of_descr out_w in
  let outcome = Service.serve_channels service ~input ~output in
  close_out output;
  close_in input;
  Alcotest.(check bool) "shutdown outcome" true (outcome = Service.Shutdown);
  let reader = Unix.in_channel_of_descr out_r in
  let responses = ref [] in
  (try
     while true do
       responses := input_line reader :: !responses
     done
   with End_of_file -> ());
  close_in reader;
  let responses = List.rev !responses in
  Alcotest.(check int) "one response per non-blank line" 7
    (List.length responses);
  let codes =
    List.map
      (fun line ->
        let json = Io.Json.of_string line in
        match member [ "kind" ] json with
        | Some (Io.Json.String kind) -> kind
        | _ -> expect_string [ "error" ] json)
      responses
  in
  Alcotest.(check (list string)) "response order"
    [ "load"; "check"; "parse_error"; "bad_request"; "unknown_model";
      "shutdown"; "shutting_down" ]
    codes;
  (* ids survive the queue, in order. *)
  let id_of line = member [ "id" ] (Io.Json.of_string line) in
  Alcotest.(check bool) "check id echoed" true
    (id_of (List.nth responses 1) = Some (Io.Json.String "c1"));
  Alcotest.(check bool) "post-shutdown id echoed" true
    (id_of (List.nth responses 6) = Some (Io.Json.String "late"))

let suite =
  ( "server",
    [ Alcotest.test_case "protocol: truncated lines" `Quick truncated_line;
      Alcotest.test_case "protocol: structured rejections" `Quick bad_requests;
      QCheck_alcotest.to_alcotest protocol_roundtrip;
      QCheck_alcotest.to_alcotest protocol_wire_roundtrip;
      QCheck_alcotest.to_alcotest protocol_fuzz;
      Alcotest.test_case "admission: bound and FIFO" `Quick admission_bound;
      Alcotest.test_case "quantile: bisection" `Quick quantile_search;
      Alcotest.test_case "quantile: request vs hand inversion" `Quick
        quantile_request;
      Alcotest.test_case "service: differential vs Checker" `Quick
        differential_check;
      Alcotest.test_case "service: deadline mid-Sericola" `Quick
        deadline_mid_sericola;
      Alcotest.test_case "service: evict with in-flight work" `Quick
        evict_in_flight;
      Alcotest.test_case "service: pipe session" `Quick pipe_session ] )
