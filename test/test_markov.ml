(* Tests for CTMCs, labelings, transient/steady-state analysis, model
   transforms, MRMs and the duality transform. *)

let check_close ?(tol = 1e-10) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let check_vec ?(tol = 1e-10) what expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length mismatch" what;
  Array.iteri
    (fun i e -> check_close ~tol (Printf.sprintf "%s[%d]" what i) e actual.(i))
    expected

(* A two-state repairable component: up --(mu)--> down --(nu)--> up. *)
let two_state mu nu =
  Markov.Ctmc.of_transitions ~n:2 [ (0, 1, mu); (1, 0, nu) ]

let test_ctmc_basics () =
  let c = two_state 2.0 3.0 in
  Alcotest.(check int) "states" 2 (Markov.Ctmc.n_states c);
  check_close "rate" 2.0 (Markov.Ctmc.rate c 0 1);
  check_close "exit 0" 2.0 (Markov.Ctmc.exit_rate c 0);
  check_close "exit 1" 3.0 (Markov.Ctmc.exit_rate c 1);
  check_close "max exit" 3.0 (Markov.Ctmc.max_exit_rate c);
  Alcotest.(check bool) "not absorbing" false (Markov.Ctmc.is_absorbing c 0);
  let q = Markov.Ctmc.generator c in
  check_close "generator diagonal" (-2.0) (Linalg.Csr.get q 0 0);
  check_close "generator row sum" 0.0 (Linalg.Csr.row_sum q 0);
  Alcotest.check_raises "negative rate rejected"
    (Invalid_argument "Ctmc.make: invalid rate -1 at (0,1)") (fun () ->
      ignore (Markov.Ctmc.of_transitions ~n:2 [ (0, 1, -1.0) ]))

let test_uniformized () =
  let c = two_state 2.0 3.0 in
  let lambda, p = Markov.Ctmc.uniformized c in
  check_close "lambda is max exit" 3.0 lambda;
  (* Stochastic rows. *)
  check_close "row 0" 1.0 (Linalg.Csr.row_sum p 0);
  check_close "row 1" 1.0 (Linalg.Csr.row_sum p 1);
  check_close "self loop" (1.0 -. (2.0 /. 3.0)) (Linalg.Csr.get p 0 0);
  let lambda', _ = Markov.Ctmc.uniformized ~rate:10.0 c in
  check_close "explicit rate" 10.0 lambda';
  Alcotest.check_raises "rate below max"
    (Invalid_argument "Ctmc.uniformized: rate below the maximal exit rate")
    (fun () -> ignore (Markov.Ctmc.uniformized ~rate:1.0 c))

let test_embedded () =
  let c =
    Markov.Ctmc.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ]
  in
  let e = Markov.Ctmc.embedded c in
  check_close "jump prob" 0.25 (Linalg.Csr.get e 0 1);
  check_close "jump prob 2" 0.75 (Linalg.Csr.get e 0 2);
  (* Absorbing states get a self loop. *)
  check_close "absorbing self" 1.0 (Linalg.Csr.get e 1 1)

(* Pure death: up --(mu)--> down.  P(still up at t) = exp(-mu t). *)
let test_transient_pure_death () =
  let mu = 1.7 in
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, mu) ] in
  List.iter
    (fun t ->
      let pi =
        Markov.Transient.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t
      in
      check_close ~tol:1e-11 (Printf.sprintf "survive t=%g" t)
        (Float.exp (-.mu *. t)) pi.{0};
      check_close ~tol:1e-11 (Printf.sprintf "dead t=%g" t)
        (1.0 -. Float.exp (-.mu *. t)) pi.{1})
    [ 0.0; 0.1; 1.0; 5.0 ]

(* Two-state repairable: closed-form transient
   P(up at t | up at 0) = nu/(mu+nu) + mu/(mu+nu) exp(-(mu+nu) t). *)
let test_transient_repairable () =
  let mu = 2.0 and nu = 5.0 in
  let c = two_state mu nu in
  List.iter
    (fun t ->
      let pi = Markov.Transient.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t in
      let expected =
        (nu /. (mu +. nu)) +. (mu /. (mu +. nu) *. Float.exp (-.(mu +. nu) *. t))
      in
      check_close ~tol:1e-11 (Printf.sprintf "up at t=%g" t) expected pi.{0};
      check_close ~tol:1e-11 "distribution" 1.0 (Linalg.Vec.sum pi))
    [ 0.05; 0.5; 2.0; 10.0 ]

let test_transient_large_horizon () =
  (* Large lambda*t (the case study's 468) must not underflow. *)
  let c = two_state 9.75 9.75 in
  let pi = Markov.Transient.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t:48.0 in
  check_close ~tol:1e-9 "long-run split" 0.5 pi.{0};
  check_close "mass" 1.0 (Linalg.Vec.sum pi)

(* Left-truncated Fox–Glynn windows: a rate override far above every
   exit rate pushes q = rate * t high enough that the window's left edge
   is positive — the code path where the first [left] powers of the
   uniformised DTMC only advance the iterate without accumulating.  The
   a-posteriori tail bound (retained mass >= 1 - epsilon) must hold, the
   solver must report the left edge it used, and the answer must agree
   with the default-rate reference and the closed form. *)
let test_transient_left_truncation () =
  let epsilon = 1e-10 in
  let rate = 4000.0 in
  let t = 1.0 in
  let w = Numerics.Fox_glynn.compute ~q:(rate *. t) ~epsilon in
  Alcotest.(check bool)
    (Printf.sprintf "window left %d positive" w.Numerics.Fox_glynn.left)
    true
    (w.Numerics.Fox_glynn.left > 0);
  Alcotest.(check bool)
    (Printf.sprintf "a-posteriori tail bound: retained %.17g >= 1 - %g"
       w.Numerics.Fox_glynn.total epsilon)
    true
    (w.Numerics.Fox_glynn.total >= 1.0 -. epsilon);
  let mu = 2.0 and nu = 5.0 in
  let c = two_state mu nu in
  let init = Linalg.Vec.of_array [| 1.0; 0.0 |] in
  let telemetry = Telemetry.create () in
  let forced = Markov.Transient.distribution ~epsilon ~rate ~telemetry c ~init ~t in
  (match Telemetry.gauge telemetry "fox_glynn.left" with
  | Some left ->
    Alcotest.(check bool)
      (Printf.sprintf "solver recorded left %g > 0" left)
      true (left > 0.0)
  | None -> Alcotest.fail "fox_glynn.left gauge not recorded");
  let reference = Markov.Transient.distribution ~epsilon c ~init ~t in
  let closed_form =
    (nu /. (mu +. nu)) +. (mu /. (mu +. nu) *. Float.exp (-.(mu +. nu) *. t))
  in
  check_close ~tol:(2.0 *. epsilon) "agrees with default-rate reference"
    reference.{0} forced.{0};
  check_close ~tol:1e-9 "agrees with the closed form" closed_form forced.{0};
  check_close ~tol:epsilon "still a distribution" 1.0 (Linalg.Vec.sum forced);
  (* Backward pass through the same left-truncated window: expectation
     of the state-1 indicator from state 0 is the forward mass there. *)
  let backward =
    Markov.Transient.backward ~epsilon ~rate c
      ~terminal:(Linalg.Vec.of_array [| 0.0; 1.0 |])
      ~t
  in
  check_close ~tol:(2.0 *. epsilon) "backward matches forward" forced.{1}
    backward.{0}

let test_reachability_all_consistency () =
  (* For each start state s, reachability_all agrees with a forward pass
     from the point distribution. *)
  let c =
    Markov.Ctmc.of_transitions ~n:3 [ (0, 1, 1.0); (1, 0, 0.5); (1, 2, 0.25) ]
  in
  let goal = [| false; false; true |] in
  let t = 1.3 in
  let all = Markov.Transient.reachability_all c ~goal ~t in
  for s = 0 to 2 do
    let direct =
      Markov.Transient.reachability c ~init:(Linalg.Vec.unit 3 s) ~goal ~t
    in
    check_close ~tol:1e-10 (Printf.sprintf "state %d" s) direct all.{s}
  done

let test_distribution_many () =
  let c = two_state 1.0 1.0 in
  let results =
    Markov.Transient.distribution_many c ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |])
      ~times:[ 0.5; 0.1 ]
  in
  Alcotest.(check int) "two results" 2 (List.length results);
  List.iter
    (fun (t, pi) ->
      let direct = Markov.Transient.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t in
      check_vec "matches single" (Linalg.Vec.to_array direct) (Linalg.Vec.to_array pi))
    results

let test_steady_irreducible () =
  let mu = 2.0 and nu = 5.0 in
  let c = two_state mu nu in
  let pi = Markov.Steady.stationary_irreducible c in
  check_vec ~tol:1e-9 "stationary"
    [| nu /. (mu +. nu); mu /. (mu +. nu) |]
    (Linalg.Vec.to_array pi)

let test_steady_reducible () =
  (* 0 splits to absorbing 1 (rate 1) and absorbing 2 (rate 3): limiting
     distribution from 0 is (0, 1/4, 3/4). *)
  let c = Markov.Ctmc.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ] in
  let pi = Markov.Steady.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0; 0.0 |]) in
  check_vec ~tol:1e-9 "absorption split" [| 0.0; 0.25; 0.75 |] (Linalg.Vec.to_array pi);
  let h = Markov.Steady.absorption_probabilities c in
  Alcotest.(check int) "two bsccs" 2 (Array.length h);
  (* Each state's absorption probabilities over all BSCCs sum to one. *)
  for s = 0 to 2 do
    let total = Array.fold_left (fun acc v -> acc +. v.{s}) 0.0 h in
    check_close ~tol:1e-9 (Printf.sprintf "total from %d" s) 1.0 total
  done

let test_steady_mixed () =
  (* A transient state feeding a 2-state recurrent class: the limit is the
     stationary distribution of the class. *)
  let c =
    Markov.Ctmc.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (2, 1, 6.0) ]
  in
  let pi = Markov.Steady.distribution c ~init:(Linalg.Vec.of_array [| 1.0; 0.0; 0.0 |]) in
  check_vec ~tol:1e-9 "limit" [| 0.0; 0.75; 0.25 |] (Linalg.Vec.to_array pi)

let test_labeling () =
  let l = Markov.Labeling.make ~n:3 [ ("a", [ 0; 2 ]); ("b", [ 1 ]) ] in
  Alcotest.(check (list string)) "props" [ "a"; "b" ]
    (Markov.Labeling.propositions l);
  Alcotest.(check (list bool)) "sat a" [ true; false; true ]
    (Array.to_list (Markov.Labeling.sat l "a"));
  Alcotest.(check bool) "holds" true (Markov.Labeling.holds l "b" 1);
  Alcotest.(check (list string)) "labels_of_state" [ "a" ]
    (Markov.Labeling.labels_of_state l 2);
  Alcotest.check_raises "unknown prop" (Markov.Labeling.Unknown_proposition "z")
    (fun () -> ignore (Markov.Labeling.sat l "z"));
  let l2 = Markov.Labeling.add l "c" [ 0 ] in
  Alcotest.(check bool) "functional add" false (Markov.Labeling.has_proposition l "c");
  Alcotest.(check bool) "added" true (Markov.Labeling.has_proposition l2 "c");
  (* restrict: merge states 0 and 1 into new 0, keep 2 as new 1. *)
  let r = Markov.Labeling.restrict l ~keep:[| 0; 0; 1 |] in
  Alcotest.(check (list bool)) "restricted a" [ true; true ]
    (Array.to_list (Markov.Labeling.sat r "a"));
  Alcotest.(check (list bool)) "restricted b" [ true; false ]
    (Array.to_list (Markov.Labeling.sat r "b"))

let test_make_absorbing () =
  let c = two_state 2.0 3.0 in
  let c' = Markov.Transform.make_absorbing c ~absorb:[| false; true |] in
  check_close "kept rate" 2.0 (Markov.Ctmc.rate c' 0 1);
  Alcotest.(check bool) "absorbed" true (Markov.Ctmc.is_absorbing c' 1)

let test_amalgamate () =
  (* 0 -> 1 (rate 1), 0 -> 2 (rate 2), 0 -> 3 (rate 3); group 1 and 2. *)
  let c =
    Markov.Ctmc.of_transitions ~n:4 [ (0, 1, 1.0); (0, 2, 2.0); (0, 3, 3.0) ]
  in
  let c', map =
    Markov.Transform.amalgamate_absorbing c ~groups:[| -1; 0; 0; 1 |]
      ~group_count:2
  in
  Alcotest.(check int) "states" 3 (Markov.Ctmc.n_states c');
  Alcotest.(check (list int)) "map" [ 0; 1; 1; 2 ] (Array.to_list map);
  check_close "merged rate" 3.0 (Markov.Ctmc.rate c' 0 1);
  check_close "other rate" 3.0 (Markov.Ctmc.rate c' 0 2);
  Alcotest.check_raises "grouping a non-absorbing state"
    (Invalid_argument
       "Transform.amalgamate_absorbing: state 0 is grouped but not absorbing")
    (fun () ->
      ignore
        (Markov.Transform.amalgamate_absorbing c ~groups:[| 0; -1; -1; -1 |]
           ~group_count:1))

let test_mrm () =
  let m =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 1.0) ]
      ~rewards:[| 2.0; 0.0; 5.0 |]
  in
  check_close "reward" 5.0 (Markov.Mrm.reward m 2);
  check_close "max reward" 5.0 (Markov.Mrm.max_reward m);
  Alcotest.(check (list (float 0.0))) "levels include 0" [ 0.0; 2.0; 5.0 ]
    (Array.to_list (Markov.Mrm.reward_levels m));
  Alcotest.(check bool) "integral" true (Markov.Mrm.all_rewards_integral m);
  let m2 = Markov.Mrm.map_rewards (fun _ r -> r +. 0.5) m in
  Alcotest.(check bool) "non-integral" false (Markov.Mrm.all_rewards_integral m2);
  (* Levels always contain zero even if no state earns zero. *)
  let m3 =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 3.0; 4.0 |]
  in
  Alcotest.(check (list (float 0.0))) "zero prepended" [ 0.0; 3.0; 4.0 ]
    (Array.to_list (Markov.Mrm.reward_levels m3));
  Alcotest.check_raises "negative reward"
    (Invalid_argument "Mrm.make: invalid reward -1 at state 0") (fun () ->
      ignore
        (Markov.Mrm.of_transitions ~n:1 [] ~rewards:[| -1.0 |]))

let test_duality () =
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 4.0) ] ~rewards:[| 2.0; 0.0 |]
  in
  Alcotest.(check bool) "dualizable" true (Markov.Duality.is_dualizable m);
  let d = Markov.Duality.dual m in
  check_close "dual rate" 2.0 (Markov.Ctmc.rate (Markov.Mrm.ctmc d) 0 1);
  check_close "dual reward" 0.5 (Markov.Mrm.reward d 0);
  check_close "absorbing zero-reward stays" 0.0 (Markov.Mrm.reward d 1);
  (* Involution on the dualizable part. *)
  let dd = Markov.Duality.dual d in
  check_close "involution rate" 4.0 (Markov.Ctmc.rate (Markov.Mrm.ctmc dd) 0 1);
  check_close "involution reward" 2.0 (Markov.Mrm.reward dd 0);
  let bad =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 0.0; 1.0 |]
  in
  Alcotest.(check bool) "not dualizable" false (Markov.Duality.is_dualizable bad);
  Alcotest.check_raises "dual rejects"
    (Invalid_argument
       "Duality.dual: needs positive rewards on non-absorbing states and no \
        impulse rewards")
    (fun () -> ignore (Markov.Duality.dual bad))

(* The duality theorem itself, numerically: for the paper's P2 recipe,
   time-bounded reachability on the dual equals reward-bounded
   reachability on the original (here both computed by independent
   means — the dual by transient analysis, the original by Sericola). *)
let test_duality_theorem () =
  let m =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 1, 1.5); (1, 0, 0.75); (1, 2, 0.5) ]
      ~rewards:[| 2.0; 3.0; 0.0 |]
  in
  let r_bound = 4.0 in
  let dual = Markov.Duality.dual m in
  let goal = [| false; false; true |] in
  let via_dual =
    Markov.Transient.reachability ~epsilon:1e-13 (Markov.Mrm.ctmc dual)
      ~init:(Linalg.Vec.of_array [| 1.0; 0.0; 0.0 |]) ~goal ~t:r_bound
  in
  (* Reward-bounded reachability with a huge time bound approximates the
     time-unbounded quantity. *)
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal ~time_bound:400.0
      ~reward_bound:r_bound
  in
  let via_sericola = Perf.Sericola.solve ~epsilon:1e-12 p in
  check_close ~tol:1e-7 "duality theorem" via_dual via_sericola

let test_stationary_detection () =
  (* A long horizon on the case-study model: the flushed series must match
     both the undetected series and the true stationary distribution. *)
  let m = Models.Adhoc.mrm () in
  let c = Markov.Mrm.ctmc m in
  let init = Linalg.Vec.unit 9 Models.Adhoc.initial_state in
  let t = 200.0 in
  let plain = Markov.Transient.distribution ~epsilon:1e-12 c ~init ~t in
  let detected =
    Markov.Transient.distribution ~epsilon:1e-12 ~stationary_detection:1e-14 c
      ~init ~t
  in
  check_vec ~tol:1e-9 "detection matches plain" (Linalg.Vec.to_array plain) (Linalg.Vec.to_array detected);
  let stationary = Markov.Steady.stationary_irreducible c in
  check_vec ~tol:1e-7 "long horizon reaches stationarity" (Linalg.Vec.to_array stationary) (Linalg.Vec.to_array detected);
  (* Backward direction too. *)
  let goal = Array.init 9 (fun s -> s = 8) in
  let plain = Markov.Transient.reachability_all ~epsilon:1e-12 c ~goal ~t in
  let detected =
    Markov.Transient.reachability_all ~epsilon:1e-12
      ~stationary_detection:1e-14 c ~goal ~t
  in
  check_vec ~tol:1e-9 "backward detection" (Linalg.Vec.to_array plain) (Linalg.Vec.to_array detected);
  (* Short horizons must be unaffected even with a coarse threshold. *)
  let t = 0.05 in
  let plain = Markov.Transient.distribution ~epsilon:1e-12 c ~init ~t in
  let detected =
    Markov.Transient.distribution ~epsilon:1e-12 ~stationary_detection:1e-12 c
      ~init ~t
  in
  check_vec ~tol:1e-9 "short horizon unaffected" (Linalg.Vec.to_array plain) (Linalg.Vec.to_array detected)

(* ---------------- property tests ---------------------------------- *)

let gen_ctmc =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* edges =
      list_size (int_range 1 12)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
           (float_range 0.1 5.0))
    in
    return (n, edges))

let prop_transient_is_distribution =
  QCheck2.Test.make ~count:60 ~name:"transient result is a distribution"
    QCheck2.Gen.(pair gen_ctmc (float_range 0.0 10.0))
    (fun ((n, edges), t) ->
      let c = Markov.Ctmc.of_transitions ~n edges in
      let pi = Markov.Transient.distribution c ~init:(Linalg.Vec.unit n 0) ~t in
      Linalg.Vec.is_distribution ~tol:1e-8 pi)

let prop_uniformized_stochastic =
  QCheck2.Test.make ~count:60 ~name:"uniformised matrix is stochastic" gen_ctmc
    (fun (n, edges) ->
      let c = Markov.Ctmc.of_transitions ~n edges in
      let _, p = Markov.Ctmc.uniformized c in
      List.for_all
        (fun i ->
          Numerics.Float_utils.approx_eq ~rel:1e-9 1.0 (Linalg.Csr.row_sum p i))
        (List.init n Fun.id))

let prop_steady_fixed_point =
  QCheck2.Test.make ~count:40 ~name:"steady distribution is a fixed point"
    gen_ctmc (fun (n, edges) ->
      let c = Markov.Ctmc.of_transitions ~n edges in
      let pi = Markov.Steady.distribution c ~init:(Linalg.Vec.unit n 0) in
      Linalg.Vec.is_distribution ~tol:1e-6 pi
      &&
      (* pi Q = 0, i.e. pi P = pi for the uniformised P. *)
      let _, p = Markov.Ctmc.uniformized c in
      Linalg.Vec.linf_dist pi (Linalg.Csr.vec_mul pi p) < 1e-6)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "markov",
    [ Alcotest.test_case "ctmc basics" `Quick test_ctmc_basics;
      Alcotest.test_case "uniformized" `Quick test_uniformized;
      Alcotest.test_case "embedded" `Quick test_embedded;
      Alcotest.test_case "transient pure death" `Quick test_transient_pure_death;
      Alcotest.test_case "transient repairable" `Quick test_transient_repairable;
      Alcotest.test_case "transient large horizon" `Quick
        test_transient_large_horizon;
      Alcotest.test_case "transient left truncation" `Quick
        test_transient_left_truncation;
      Alcotest.test_case "reachability_all" `Quick
        test_reachability_all_consistency;
      Alcotest.test_case "distribution_many" `Quick test_distribution_many;
      Alcotest.test_case "steady irreducible" `Quick test_steady_irreducible;
      Alcotest.test_case "steady reducible" `Quick test_steady_reducible;
      Alcotest.test_case "steady mixed" `Quick test_steady_mixed;
      Alcotest.test_case "labeling" `Quick test_labeling;
      Alcotest.test_case "make_absorbing" `Quick test_make_absorbing;
      Alcotest.test_case "amalgamate" `Quick test_amalgamate;
      Alcotest.test_case "mrm" `Quick test_mrm;
      Alcotest.test_case "duality transform" `Quick test_duality;
      Alcotest.test_case "duality theorem" `Quick test_duality_theorem;
      Alcotest.test_case "stationary detection" `Quick
        test_stationary_detection;
      q prop_transient_is_distribution;
      q prop_uniformized_stochastic;
      q prop_steady_fixed_point ] )
