Robust checking of interval-valued MRMs.  A ±PCT rate drift widens a
builtin into an uncertainty set; threshold queries then answer in
three-valued logic — SATISFIED under every model in the set, violated
under every model, or UNKNOWN when the envelopes straddle the bound —
and the exit code follows: 0 only when the whole set satisfies the
formula, 1 when none of it can, 3 for UNKNOWN:

  $ csrl-check --model adhoc --rate-drift 5 'P>=0.4 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )'
  query:  P>=0.4 ((call_idle | doze) U[t<=24][r<=600] call_initiated)
  engine: robust-envelope over occupation-time(eps=1e-09)
  model:  9 states, 24 rate intervals, max width 36
    state  0  [adhoc_idle,call_idle                    ]  UNKNOWN
    state  1  [adhoc_active,call_idle                  ]  UNKNOWN
    state  2  [adhoc_idle,call_initiated               ]  SATISFIED
    state  3  [adhoc_active,call_initiated             ]  SATISFIED
    state  4  [adhoc_idle,call_incoming                ]  violated
    state  5  [adhoc_active,call_incoming              ]  violated
    state  6  [adhoc_idle,call_active                  ]  violated
    state  7  [adhoc_active,call_active                ]  violated
    state  8  [doze                                    ]  UNKNOWN
  initial distribution satisfies the formula with mass in [0, 1]
  [3]

A P=? query on a builtin interval variant answers with per-state
probability envelopes instead of point values:

  $ csrl-check --model multiprocessor-drift 'P=? ( F[t<=2] down )'
  query:  P=? (F[t<=2] down)
  engine: robust-envelope over occupation-time(eps=1e-09)
  model:  5 states, 8 rate intervals, max width 0.6
    state  0  [down                                    ]  [0.9999999990, 1.0000000000]
    state  1  [degraded,up                             ]  [0.0021822378, 0.0028987805]
    state  2  [degraded,up                             ]  [0.0000064343, 0.0000108488]
    state  3  [degraded,saturated,up                   ]  [0.0000000199, 0.0000000451]
    state  4  [full,saturated,up                       ]  [0.0000000000, 0.0000000015]
  value from the initial distribution: [0.0000000000, 0.0000000015]

An explicit interval model from disk (--imrm): transitions carry
[lo, hi] rate intervals (a bare rate means a point), rewards a number
or a pair, and "init" picks the initial state:

  $ cat > station.imrm.json <<'EOF'
  > {"states": 3,
  >  "transitions": [[0, 1, 0.9, 1.1], [1, 2, 0.45, 0.55], [2, 0, 1.0, 1.0]],
  >  "rewards": [[0.0, 1.0], 2.0, 0.0],
  >  "labels": {"up": [0, 1], "down": [2]},
  >  "init": 0}
  > EOF
  $ csrl-check --imrm station.imrm.json 'P=? ( F[t<=4] down )'
  query:  P=? (F[t<=4] down)
  engine: robust-envelope over occupation-time(eps=1e-09)
  model:  3 states, 3 rate intervals, max width 1
    state  0  [up                                      ]  [0.6967259446, 0.7906710242]
    state  1  [up                                      ]  [0.8347011104, 0.8891968426]
    state  2  [down                                    ]  [0.9999999990, 1.0000000000]
  value from the initial distribution: [0.6967259446, 0.7906710242]

Malformed interval models are one-line diagnostics, exit 2 — bad JSON,
a dangling state index, an inverted interval, a missing file, and the
flag combinations that make no sense:

  $ echo 'not json' > bad.json
  $ csrl-check --imrm bad.json 'P=? ( F[t<=4] down )'
  interval model bad.json: bad JSON at offset 0: expected null
  [2]
  $ echo '{"states": 2, "transitions": [[0, 5, 1.0]], "rewards": [0, 0]}' > dangling.json
  $ csrl-check --imrm dangling.json 'P=? ( F[t<=4] down )'
  interval model dangling.json: transition 0: state 5 out of range (0..1)
  [2]
  $ echo '{"states": 2, "transitions": [[0, 1, 2.0, 1.0]], "rewards": [0, 0]}' > inverted.json
  $ csrl-check --imrm inverted.json 'P=? ( F[t<=4] down )'
  interval model inverted.json: Imrm: rate 0 -> 1 needs 0 <= lo <= hi (finite), got [2, 1]
  [2]
  $ csrl-check --imrm no-such-file.json 'P=? ( F[t<=4] down )'
  no-such-file.json: No such file or directory
  [2]
  $ csrl-check --imrm station.imrm.json --rate-drift 5 'P=? ( F[t<=4] down )'
  --imrm cannot be combined with --file or --rate-drift
  [2]
  $ csrl-check --model adhoc --rate-drift 120 'P=? ( F[t<=2] doze )'
  --rate-drift needs a percentage in [0, 100)
  [2]

--stats on a drifted run shows the robust telemetry — one envelope, its
lower and upper sweeps' value-iteration steps — alongside the usual
counters, with the UNKNOWN verdicts rendered as above:

  $ csrl-check --model adhoc --rate-drift 5 --stats 'P>=0.4 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )'
  query:  P>=0.4 ((call_idle | doze) U[t<=24][r<=600] call_initiated)
  engine: robust-envelope over occupation-time(eps=1e-09)
  model:  9 states, 24 rate intervals, max width 36
    state  0  [adhoc_idle,call_idle                    ]  UNKNOWN
    state  1  [adhoc_active,call_idle                  ]  UNKNOWN
    state  2  [adhoc_idle,call_initiated               ]  SATISFIED
    state  3  [adhoc_active,call_initiated             ]  SATISFIED
    state  4  [adhoc_idle,call_incoming                ]  violated
    state  5  [adhoc_active,call_incoming              ]  violated
    state  6  [adhoc_idle,call_active                  ]  violated
    state  7  [adhoc_active,call_active                ]  violated
    state  8  [doze                                    ]  UNKNOWN
  initial distribution satisfies the formula with mass in [0, 1]
  telemetry:
    fox_glynn.calls = 2
    robust.envelopes = 1
    robust.steps = 23216
    fox_glynn.left = 10228
    fox_glynn.right = 11608
    fox_glynn.weight_mass = 1
    pool.chunks = 0
    pool.inline_runs = 0
    pool.parallel_runs = 0
    pool.size = 1
  [3]

The serving daemon speaks the same robust dialect: loading a -drift
builtin reports the interval model's shape, check results come back as
"interval" or "three-valued" objects, quantile search on an interval
entry is refused with a pointer at the supported path, and an
out-of-range drift field is a bad request:

  $ csrl-serve <<'EOF'
  > {"kind": "load", "model": "multiprocessor-drift"}
  > {"kind": "check", "model": "multiprocessor-drift", "query": "P=? ( F[t<=2] down )", "id": "r1"}
  > {"kind": "check", "model": "multiprocessor-drift", "query": "P>=0.5 ( F[t<=2] down )", "id": "r2"}
  > {"kind": "quantile", "model": "multiprocessor-drift", "query": "P=? ( true U[t<=1] down )", "variable": "t", "target": 0.5, "hi": 24}
  > {"kind": "load", "model": "bad", "drift": 250}
  > {"kind": "shutdown"}
  > EOF
  {"ok":true,"kind":"load","model":"multiprocessor-drift","robust":true,"states":5,"transitions":8,"max_width":0.60000000000000009}
  {"ok":true,"kind":"check","id":"r1","model":"multiprocessor-drift","query":"P=? (F[t<=2] down)","result":{"kind":"interval","value_lo":0,"value_hi":1.4512794176147204e-09,"states":[[0.999999999,1],[0.0021822377894083157,0.0028987805009481546],[6.4343246951410114e-06,1.0848820026802367e-05],[1.9875032668517522e-08,4.5101404221076669e-08],[0,1.4512794176147204e-09]]}}
  {"ok":true,"kind":"check","id":"r2","model":"multiprocessor-drift","query":"P>=0.5 (F[t<=2] down)","result":{"kind":"three-valued","initial_mass_lo":0,"initial_mass_hi":0,"states":["holds","fails","fails","fails","fails"]}}
  {"ok":false,"error":"unsupported","message":"quantile search needs point probabilities; check the interval model's envelopes with P queries instead"}
  {"ok":false,"error":"bad_request","message":"\"drift\" must be a percentage in [0, 100)"}
  {"ok":true,"kind":"shutdown"}

Zero width is not a special rendering: --rate-drift 0 delegates to the
precise engines and prints the same digits twice.

  $ csrl-check --model multiprocessor --rate-drift 0 'P=? ( F[t<=2] down )' | tail -1
  value from the initial distribution: [0.0000000001, 0.0000000001]
