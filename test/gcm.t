Guarded-command (.gcm) models on the command line: the windowed engine
checks them without enumerating the state space, other engines
materialise a capped explicit twin, and front-end errors carry
file:line:column positions.

  $ cat > queue.gcm <<'EOF'
  > // An M/M/1-style queue with a capacity and a service-rate knob.
  > const int N = 8;
  > const double arrive = 1.8;
  > 
  > module queue
  >   q : [0..N] init 0;
  >   [] q < N -> arrive : (q'=q+1);
  >   [] q > 0 -> 2.0 : (q'=q-1);
  > endmodule
  > 
  > label "empty" = q=0;
  > label "full" = q=N;
  > 
  > rewards
  >   q > 0 : 1.0 * q;
  > endrewards
  > EOF

Propositions come from the labels, without materialising anything:

  $ csrl-check --file queue.gcm --list-propositions
  model: 9 states, 16 transitions
    empty                    (1 states)
    full                     (1 states)

The windowed engine answers with a certified interval plus the window
statistics.  Run the same check twice: the engine is deterministic, so
both runs print byte-identical output (including the --stats summary,
which omits spans and wall-clock times):

  $ csrl-check --file queue.gcm --engine windowed --stats 'P=? ( true U[t<=2] full )'
  query:  P=? (F[t<=2] full)
  engine: windowed(eps=1e-09)
  value from the initial state: 0.0045280347
  certified interval: [0.00452803457372, 0.00452803479178] (delta 1.09e-10 <= epsilon 1e-09)
  window: peak=8 expanded=8 dropped=0 iterations=33 restarts=1 rate=4.56
  telemetry:
    explore.iterations = 33
    explore.restarts = 1
    explore.states_expanded = 8
    fox_glynn.calls = 1
    reduction.symbolic_bypass = 1
    explore.delta = 1.09027e-10
    explore.mass_dropped = 0
    explore.peak_window = 8
    explore.rate = 4.56
    fox_glynn.left = 0
    fox_glynn.right = 33
    fox_glynn.weight_mass = 1

  $ csrl-check --file queue.gcm --engine windowed --stats 'P=? ( true U[t<=2] full )'
  query:  P=? (F[t<=2] full)
  engine: windowed(eps=1e-09)
  value from the initial state: 0.0045280347
  certified interval: [0.00452803457372, 0.00452803479178] (delta 1.09e-10 <= epsilon 1e-09)
  window: peak=8 expanded=8 dropped=0 iterations=33 restarts=1 rate=4.56
  telemetry:
    explore.iterations = 33
    explore.restarts = 1
    explore.states_expanded = 8
    fox_glynn.calls = 1
    reduction.symbolic_bypass = 1
    explore.delta = 1.09027e-10
    explore.mass_dropped = 0
    explore.peak_window = 8
    explore.rate = 4.56
    fox_glynn.left = 0
    fox_glynn.right = 33
    fox_glynn.weight_mass = 1

Any explicit engine materialises the reachable space first and then
runs the ordinary pipeline on the twin:

  $ csrl-check --file queue.gcm 'P=? ( true U[t<=2] full )'
  query:  P=? (F[t<=2] full)
  engine: occupation-time(eps=1e-09)
    state  0  [empty                                   ]  0.0045280346
    state  1  [-                                       ]  0.0095928366
    state  2  [-                                       ]  0.0237568515
    state  3  [-                                       ]  0.0557780532
    state  4  [-                                       ]  0.1200036451
    state  5  [-                                       ]  0.2350258206
    state  6  [-                                       ]  0.4182458187
    state  7  [-                                       ]  0.6768518672
    state  8  [full                                    ]  0.9999999998
  value from the initial distribution: 0.0045280346

Front-end errors point at the offending token as file:line:column.  A
syntax error:

  $ cat > broken.gcm <<'EOF'
  > module m
  >   x : [0..3] init 0;
  >   [] x < 3 -> : (x'=x+1);
  > endmodule
  > EOF
  $ csrl-check --file broken.gcm --engine windowed 'P=? ( true U[t<=1] full )'
  broken.gcm:3:15: expected an expression, found ':'
  [2]

An unknown name, reported where it is used:

  $ cat > unknown.gcm <<'EOF'
  > module m
  >   x : [0..3] init 0;
  >   [] y < 3 -> 1.0 : (x'=x+1);
  > endmodule
  > EOF
  $ csrl-check --file unknown.gcm --engine windowed 'P=? ( true U[t<=1] full )'
  unknown.gcm:3:6: unknown name 'y'
  [2]

An initial value outside the declared range:

  $ cat > range.gcm <<'EOF'
  > module m
  >   x : [0..3] init 7;
  > endmodule
  > EOF
  $ csrl-check --file range.gcm --engine windowed 'P=? ( true U[t<=1] full )'
  range.gcm:2:3: initial value 7 of 'x' outside [0..3]
  [2]

A type error (an arithmetic expression where a guard is expected):

  $ cat > typed.gcm <<'EOF'
  > module m
  >   x : [0..3] init 0;
  >   [] x + 1 -> 1.0 : (x'=x+1);
  > endmodule
  > EOF
  $ csrl-check --file typed.gcm --engine windowed 'P=? ( true U[t<=1] full )'
  typed.gcm:3:3: command guard is int, expected bool
  [2]

Features that need an explicit state space refuse cleanly under the
windowed engine instead of silently materialising:

  $ csrl-check --file queue.gcm --engine windowed --info 'P=? ( true U[t<=2] full )'
  --info, --lump, --batch and --frontier need an explicit state space; rerun with an explicit engine (e.g. --engine sericola) to materialise the .gcm model
  [2]
