(* Tests for the random number generator, the trajectory sampler and the
   Monte-Carlo estimators. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let test_rng_determinism () =
  let a = Sim.Rng.create ~seed:7L and b = Sim.Rng.create ~seed:7L in
  for _ = 1 to 100 do
    if Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b then
      Alcotest.fail "same seed diverged"
  done;
  let c = Sim.Rng.create ~seed:8L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.next_int64 a <> Sim.Rng.next_int64 c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_ranges () =
  let g = Sim.Rng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.float g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %g" x;
    let k = Sim.Rng.int g ~bound:7 in
    if k < 0 || k >= 7 then Alcotest.failf "int out of range: %d" k
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int g ~bound:0))

let test_rng_moments () =
  let g = Sim.Rng.create ~seed:42L in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.float g
  done;
  check_close ~tol:5e-3 "uniform mean" 0.5 (!acc /. float_of_int n);
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.exponential g ~rate:2.0
  done;
  check_close ~tol:1e-2 "exponential mean" 0.5 (!acc /. float_of_int n)

let test_categorical () =
  let g = Sim.Rng.create ~seed:5L in
  let counts = Array.make 3 0 in
  let n = 120_000 in
  for _ = 1 to n do
    let k = Sim.Rng.categorical g ~weights:[| 1.0; 2.0; 3.0 |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_close ~tol:2e-2 "weight 1" (1.0 /. 6.0)
    (float_of_int counts.(0) /. float_of_int n);
  check_close ~tol:2e-2 "weight 3" 0.5
    (float_of_int counts.(2) /. float_of_int n);
  (* Zero-weight entries are never drawn. *)
  for _ = 1 to 1000 do
    if Sim.Rng.categorical g ~weights:[| 0.0; 1.0; 0.0 |] <> 1 then
      Alcotest.fail "drew a zero-weight branch"
  done;
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Rng.categorical: weights must have a positive sum")
    (fun () -> ignore (Sim.Rng.categorical g ~weights:[| 0.0; 0.0 |]))

let test_split () =
  let g = Sim.Rng.create ~seed:3L in
  let a = Sim.Rng.split g in
  let b = Sim.Rng.split g in
  Alcotest.(check bool) "split streams differ" true
    (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b)

let two_state_mrm mu =
  Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu) ] ~rewards:[| 3.0; 1.0 |]

let test_trajectory_structure () =
  let mrm = two_state_mrm 1.0 in
  let g = Sim.Rng.create ~seed:11L in
  let tr = Sim.Trajectory.sample g mrm ~init:0 ~horizon:10.0 in
  (match tr.Sim.Trajectory.steps with
   | first :: _ ->
     Alcotest.(check int) "starts at init" 0 first.Sim.Trajectory.state;
     check_close "starts at time 0" 0.0 first.Sim.Trajectory.entered_at;
     check_close "starts at reward 0" 0.0 first.Sim.Trajectory.reward_on_entry
   | [] -> Alcotest.fail "empty trajectory");
  (* Reward at the horizon must equal the recorded final reward. *)
  check_close ~tol:1e-9 "reward_at horizon" tr.Sim.Trajectory.final_reward
    (Sim.Trajectory.reward_at tr 10.0);
  Alcotest.(check int) "state_at horizon" tr.Sim.Trajectory.final_state
    (Sim.Trajectory.state_at tr 10.0);
  (* Reward is non-decreasing along the path. *)
  let previous = ref (-1.0) in
  List.iter
    (fun t ->
      let y = Sim.Trajectory.reward_at tr t in
      if y < !previous -. 1e-12 then Alcotest.fail "reward decreased";
      previous := y)
    [ 0.0; 1.0; 2.5; 7.0; 10.0 ]

let test_trajectory_absorbing () =
  (* From the absorbing state the trajectory never moves and accumulates
     its reward linearly. *)
  let mrm = two_state_mrm 1.0 in
  let g = Sim.Rng.create ~seed:13L in
  let tr = Sim.Trajectory.sample g mrm ~init:1 ~horizon:4.0 in
  Alcotest.(check int) "stays" 1 tr.Sim.Trajectory.final_state;
  check_close "linear accumulation" 4.0 tr.Sim.Trajectory.final_reward;
  Alcotest.(check int) "single step" 1 (List.length tr.Sim.Trajectory.steps)

let test_estimator_against_closed_form () =
  (* P(X_t = down) = 1 - exp(-mu t); the CI must contain it. *)
  let mu = 0.9 and t = 1.2 in
  let mrm = two_state_mrm mu in
  let g = Sim.Rng.create ~seed:21L in
  let iv =
    Sim.Estimate.reward_bounded_reachability g mrm ~init:0
      ~goal:[| false; true |] ~time_bound:t ~reward_bound:1e9 ~samples:50_000
  in
  let exact = 1.0 -. Float.exp (-.mu *. t) in
  if not (Sim.Estimate.contains iv exact) then
    Alcotest.failf "CI %.5f +- %.5f misses %.5f" iv.Sim.Estimate.mean
      iv.Sim.Estimate.half_width exact

let test_bernoulli_interval () =
  let iv = Sim.Estimate.bernoulli_interval ~hits:50 100 in
  check_close "mean" 0.5 iv.Sim.Estimate.mean;
  Alcotest.(check bool) "contains" true (Sim.Estimate.contains iv 0.45);
  Alcotest.(check bool) "excludes" false (Sim.Estimate.contains iv 0.1);
  (* Wider at lower confidence... i.e. narrower at 0.90 than 0.999. *)
  let narrow = Sim.Estimate.bernoulli_interval ~confidence:0.90 ~hits:50 100 in
  let wide = Sim.Estimate.bernoulli_interval ~confidence:0.999 ~hits:50 100 in
  Alcotest.(check bool) "confidence ordering" true
    (narrow.Sim.Estimate.half_width < wide.Sim.Estimate.half_width);
  Alcotest.check_raises "bad hits"
    (Invalid_argument "Estimate: bad hit count") (fun () ->
      ignore (Sim.Estimate.bernoulli_interval ~hits:5 4))

let test_wilson_interval () =
  (* At p = 0.5 the Wilson centre is exactly the proportion. *)
  let iv = Sim.Estimate.wilson_interval ~hits:50 100 in
  check_close "centred at 0.5" 0.5 iv.Sim.Estimate.mean;
  Alcotest.(check bool) "contains 0.45" true (Sim.Estimate.contains iv 0.45);
  Alcotest.(check bool) "excludes 0.1" false (Sim.Estimate.contains iv 0.1);
  (* At the extremes the normal approximation collapses towards zero
     width; Wilson keeps a real bracket that still excludes far values. *)
  let zero = Sim.Estimate.wilson_interval ~hits:0 1000 in
  Alcotest.(check bool) "nonzero width at 0 hits" true
    (zero.Sim.Estimate.half_width > 0.0);
  Alcotest.(check bool) "contains tiny p" true
    (Sim.Estimate.contains zero 0.001);
  Alcotest.(check bool) "excludes 0.05" false
    (Sim.Estimate.contains zero 0.05);
  let narrow = Sim.Estimate.wilson_interval ~confidence:0.90 ~hits:50 100 in
  let wide = Sim.Estimate.wilson_interval ~confidence:0.999 ~hits:50 100 in
  Alcotest.(check bool) "confidence ordering" true
    (narrow.Sim.Estimate.half_width < wide.Sim.Estimate.half_width);
  Alcotest.check_raises "bad hits"
    (Invalid_argument "Estimate: bad hit count") (fun () ->
      ignore (Sim.Estimate.wilson_interval ~hits:5 4))

(* The simulation oracle for the P3 pipeline: on seeded random models,
   a Wilson 99% confidence interval around the Monte-Carlo estimate of
   Pr{Y_t <= r, X_t in goal} must bracket the Sericola engine's value.
   Fixed seeds keep the test deterministic; at 99% confidence over six
   problems a flake-free run is what correctness predicts. *)
let test_simulation_oracle_brackets_sericola () =
  List.iter
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed Models.Random_mrm.default
      in
      let numerical = Perf.Sericola.solve ~epsilon:1e-9 p in
      let init =
        (* generate_problem starts from a point mass. *)
        let found = ref (-1) in
        Array.iteri
          (fun s mass -> if mass > 0.5 then found := s)
          (Linalg.Vec.to_array p.Perf.Problem.init);
        !found
      in
      let rng = Sim.Rng.create ~seed:(Int64.add seed 1000L) in
      let samples = 20_000 in
      let raw =
        Sim.Estimate.reward_bounded_reachability rng p.Perf.Problem.mrm ~init
          ~goal:p.Perf.Problem.goal ~time_bound:p.Perf.Problem.time_bound
          ~reward_bound:p.Perf.Problem.reward_bound ~samples
      in
      let wilson =
        Sim.Estimate.wilson_interval ~confidence:0.99
          ~hits:raw.Sim.Estimate.hits raw.Sim.Estimate.samples
      in
      if not (Sim.Estimate.contains wilson numerical) then
        Alcotest.failf
          "seed %Ld: Wilson CI %.5f +- %.5f (%d/%d hits) misses Sericola \
           %.8f"
          seed wilson.Sim.Estimate.mean wilson.Sim.Estimate.half_width
          wilson.Sim.Estimate.hits wilson.Sim.Estimate.samples numerical)
    [ 1L; 2L; 3L; 5L; 8L; 13L ]

(* The simulation oracle extended to the two-cost frontier: on the same
   seeded random problems, sweep a small frontier at 60% of the
   probability attainable at the full bounds, then Monte-Carlo estimate
   the interior staircase point's exact (t, r) bounds and require the
   Wilson 99% interval to bracket the sweep's probability.  The sweep's
   last grid row is the full-bounds problem, so a target below the
   attainable probability guarantees at least one emitted point; seeds
   whose attainable probability is too small for a meaningful frontier
   are skipped, and the test fails if every seed were skipped. *)
let test_simulation_oracle_brackets_frontier () =
  let exercised = ref 0 in
  List.iter
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed Models.Random_mrm.default
      in
      let eval ~t ~r =
        Perf.Sericola.solve ~epsilon:1e-9
          (Perf.Problem.make p.Perf.Problem.mrm ~init:p.Perf.Problem.init
             ~goal:p.Perf.Problem.goal ~time_bound:t ~reward_bound:r)
      in
      let pmax =
        eval ~t:p.Perf.Problem.time_bound ~r:p.Perf.Problem.reward_bound
      in
      if pmax >= 0.05 then begin
        incr exercised;
        let target = 0.6 *. pmax in
        let s =
          Perf.Frontier.sweep ~eval ~target
            ~time_bound:p.Perf.Problem.time_bound
            ~reward_bound:p.Perf.Problem.reward_bound ~points:8
            ~tolerance:1e-3
        in
        let points = s.Perf.Frontier.points in
        if points = [] then
          Alcotest.failf "seed %Ld: empty staircase despite pmax %.5f" seed
            pmax;
        let interior = List.nth points (List.length points / 2) in
        let init =
          let found = ref (-1) in
          Array.iteri
            (fun st mass -> if mass > 0.5 then found := st)
            (Linalg.Vec.to_array p.Perf.Problem.init);
          !found
        in
        let rng = Sim.Rng.create ~seed:(Int64.add seed 2000L) in
        let raw =
          Sim.Estimate.reward_bounded_reachability rng p.Perf.Problem.mrm
            ~init ~goal:p.Perf.Problem.goal
            ~time_bound:interior.Perf.Frontier.t
            ~reward_bound:interior.Perf.Frontier.r ~samples:20_000
        in
        let wilson =
          Sim.Estimate.wilson_interval ~confidence:0.99
            ~hits:raw.Sim.Estimate.hits raw.Sim.Estimate.samples
        in
        if not (Sim.Estimate.contains wilson interior.Perf.Frontier.probability)
        then
          Alcotest.failf
            "seed %Ld: Wilson CI %.5f +- %.5f (%d/%d hits) misses the \
             frontier point (t=%.5f, r=%.5f, p=%.8f)"
            seed wilson.Sim.Estimate.mean wilson.Sim.Estimate.half_width
            wilson.Sim.Estimate.hits wilson.Sim.Estimate.samples
            interior.Perf.Frontier.t interior.Perf.Frontier.r
            interior.Perf.Frontier.probability
      end)
    [ 1L; 2L; 3L; 5L; 8L; 13L ];
  if !exercised = 0 then
    Alcotest.fail "every seed was skipped: no frontier exercised at all"

let test_until_estimator_phi_constraint () =
  (* a -> b -> goal with phi = {a}: the simulated until probability must
     be ~0 because every path passes b. *)
  let mrm =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 5.0); (1, 2, 5.0) ]
      ~rewards:[| 1.0; 1.0; 0.0 |]
  in
  let g = Sim.Rng.create ~seed:31L in
  let iv =
    Sim.Estimate.until_probability g mrm ~init:0
      ~phi:[| true; false; false |]
      ~psi:[| false; false; true |] ~time_bound:10.0 ~reward_bound:100.0
      ~samples:2_000
  in
  check_close "blocked until" 0.0 iv.Sim.Estimate.mean;
  (* With phi = {a, b} nearly every path gets through by t = 10. *)
  let iv =
    Sim.Estimate.until_probability g mrm ~init:0
      ~phi:[| true; true; false |]
      ~psi:[| false; false; true |] ~time_bound:10.0 ~reward_bound:100.0
      ~samples:2_000
  in
  Alcotest.(check bool) "open until" true (iv.Sim.Estimate.mean > 0.95)

let suite =
  ( "sim",
    [ Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
      Alcotest.test_case "rng moments" `Quick test_rng_moments;
      Alcotest.test_case "categorical" `Quick test_categorical;
      Alcotest.test_case "split" `Quick test_split;
      Alcotest.test_case "trajectory structure" `Quick
        test_trajectory_structure;
      Alcotest.test_case "trajectory absorbing" `Quick
        test_trajectory_absorbing;
      Alcotest.test_case "estimator vs closed form" `Quick
        test_estimator_against_closed_form;
      Alcotest.test_case "bernoulli interval" `Quick test_bernoulli_interval;
      Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
      Alcotest.test_case "simulation oracle brackets sericola" `Quick
        test_simulation_oracle_brackets_sericola;
      Alcotest.test_case "simulation oracle brackets the frontier" `Quick
        test_simulation_oracle_brackets_frontier;
      Alcotest.test_case "until estimator" `Quick
        test_until_estimator_phi_constraint ] )
