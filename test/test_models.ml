(* Tests for the bundled example models. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let test_adhoc_structure () =
  let m = Models.Adhoc.mrm () in
  Alcotest.(check int) "nine states" 9 (Markov.Mrm.n_states m);
  (* Every state is recurrent, as the paper says: a single BSCC covering
     the whole space. *)
  let g = Markov.Ctmc.graph (Markov.Mrm.ctmc m) in
  let scc = Graph.Scc.compute g in
  Alcotest.(check int) "irreducible" 1 scc.Graph.Scc.count;
  (* Exit rate of the initial state is the 19.5/h that fixes the paper's
     uniformisation constant (lambda t = 468). *)
  check_close "initial exit rate" 19.5
    (Markov.Ctmc.exit_rate (Markov.Mrm.ctmc m) Models.Adhoc.initial_state);
  (* The full model's fastest state is (initiated, adhoc-active):
     connect + give up + reconfirm.  After the Theorem 1 reduction the
     initial state's 19.5/h dominates, giving the paper's lambda t = 468
     (tested in test_case_study). *)
  check_close "full-model max exit" 435.0
    (Markov.Ctmc.max_exit_rate (Markov.Mrm.ctmc m))

let test_adhoc_rewards () =
  let m = Models.Adhoc.mrm () in
  let reward_of name =
    let l = Models.Adhoc.labeling () in
    let mask name = Markov.Labeling.sat l name in
    match name with
    | `Doze -> Markov.Mrm.reward m Models.Adhoc.(index Doze)
    | `Both_idle ->
      let idle = mask "call_idle" and a = mask "adhoc_idle" in
      let s = ref (-1) in
      Array.iteri (fun i b -> if b && a.(i) then s := i) idle;
      Markov.Mrm.reward m !s
  in
  check_close "doze power" 20.0 (reward_of `Doze);
  check_close "both idle power" 100.0 (reward_of `Both_idle);
  (* Additivity: active call + active ad hoc = 200 + 150. *)
  let l = Models.Adhoc.labeling () in
  let ca = Markov.Labeling.sat l "call_active" in
  let aa = Markov.Labeling.sat l "adhoc_active" in
  Array.iteri
    (fun s b -> if b && aa.(s) then check_close "busy power" 350.0 (Markov.Mrm.reward m s))
    ca

let test_adhoc_state_names () =
  Alcotest.(check string) "doze name" "doze" (Models.Adhoc.state_name 8);
  Alcotest.(check string) "initial name" "call_idle+adhoc_idle"
    (Models.Adhoc.state_name Models.Adhoc.initial_state);
  (* index and state_of_index are inverse. *)
  for i = 0 to Models.Adhoc.n_states - 1 do
    Alcotest.(check int) "roundtrip" i
      (Models.Adhoc.index (Models.Adhoc.state_of_index i))
  done;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Adhoc.state_of_index: out of range") (fun () ->
      ignore (Models.Adhoc.state_of_index 9))

let test_adhoc_table1 () =
  (* The Table 1 listing must be consistent: rate = 60 / mean-minutes
     (or 3600 / mean-seconds). *)
  List.iter
    (fun (name, rate, mean) ->
      let expected =
        match String.split_on_char ' ' mean with
        | [ x; "sec" ] -> 3600.0 /. float_of_string x
        | [ x; "min" ] -> 60.0 /. float_of_string x
        | _ -> Alcotest.failf "unparsed mean %S" mean
      in
      check_close name expected rate)
    Models.Adhoc.Rates.all;
  Alcotest.(check int) "eleven transitions" 11
    (List.length Models.Adhoc.Rates.all);
  Alcotest.(check int) "seven places" 7 (List.length Models.Adhoc.Power.all)

let test_multiprocessor () =
  let c = Models.Multiprocessor.default in
  let m = Models.Multiprocessor.mrm c in
  Alcotest.(check int) "states" 5 (Markov.Mrm.n_states m);
  (* Failure pooling: from 4 processors the failure rate is 4x. *)
  check_close "pooled failures" (4.0 /. 500.0)
    (Markov.Ctmc.rate (Markov.Mrm.ctmc m) 4 3);
  check_close "single repairer" 0.5 (Markov.Ctmc.rate (Markov.Mrm.ctmc m) 0 1);
  (* Capacity caps the reward. *)
  check_close "capped reward" 3.0 (Markov.Mrm.reward m 4);
  check_close "uncapped reward" 2.0 (Markov.Mrm.reward m 2);
  let l = Models.Multiprocessor.labeling c in
  Alcotest.(check bool) "down" true (Markov.Labeling.holds l "down" 0);
  Alcotest.(check bool) "full" true (Markov.Labeling.holds l "full" 4);
  Alcotest.(check bool) "degraded" true (Markov.Labeling.holds l "degraded" 2);
  (* Performability problem: the goal is everything. *)
  let p = Models.Multiprocessor.performability c ~t:10.0 ~r:30.0 in
  Alcotest.(check bool) "goal universal" true
    (Array.for_all Fun.id p.Perf.Problem.goal)

let test_cluster () =
  let c = Models.Cluster.default in
  let m = Models.Cluster.mrm c in
  Alcotest.(check int) "states" 18 (Markov.Mrm.n_states m);
  let init = Models.Cluster.initial_state c in
  check_close "full power" 25.0 (Markov.Mrm.reward m init);
  let l = Models.Cluster.labeling c in
  Alcotest.(check bool) "initially available" true
    (Markov.Labeling.holds l "available" init);
  (* Below quorum is not available even with the switch up. *)
  let low = Models.Cluster.index c ~workstations_up:4 ~switch_up:true in
  Alcotest.(check bool) "below quorum" false
    (Markov.Labeling.holds l "available" low);
  let no_switch = Models.Cluster.index c ~workstations_up:8 ~switch_up:false in
  Alcotest.(check bool) "switch down" false
    (Markov.Labeling.holds l "available" no_switch);
  (* Switch repair moves up. *)
  check_close "switch repair" 1.0
    (Markov.Ctmc.rate (Markov.Mrm.ctmc m) no_switch init)

let test_queue () =
  let c = Models.Queue_srn.default in
  let m = Models.Queue_srn.mrm c in
  (* (K+1) queue levels x 2 server states. *)
  Alcotest.(check int) "states" (2 * (c.Models.Queue_srn.capacity + 1))
    (Markov.Mrm.n_states m);
  let s number up = Models.Queue_srn.state_of c ~jobs:number ~server_up:up in
  let chain = Markov.Mrm.ctmc m in
  check_close "arrival" 2.0 (Markov.Ctmc.rate chain (s 0 true) (s 1 true));
  check_close "service" 3.0 (Markov.Ctmc.rate chain (s 2 true) (s 1 true));
  check_close "no service when down" 0.0
    (Markov.Ctmc.rate chain (s 2 false) (s 1 false));
  check_close "failure" 0.01 (Markov.Ctmc.rate chain (s 1 true) (s 1 false));
  check_close "repair" 2.0 (Markov.Ctmc.rate chain (s 1 false) (s 1 true));
  (* Inhibitor: no arrivals at capacity. *)
  check_close "capacity inhibitor" 0.0
    (Markov.Ctmc.rate chain (s c.Models.Queue_srn.capacity true)
       (s c.Models.Queue_srn.capacity true));
  Alcotest.(check bool) "full is near-absorbing upward" true
    (Markov.Ctmc.exit_rate chain (s c.Models.Queue_srn.capacity true) < 4.0);
  (* Rewards: holding + server power. *)
  check_close "reward" ((3.0 *. 1.0) +. 5.0) (Markov.Mrm.reward m (s 3 true));
  check_close "reward down" 3.0 (Markov.Mrm.reward m (s 3 false));
  let l = Models.Queue_srn.labeling c in
  Alcotest.(check bool) "idle" true (Markov.Labeling.holds l "idle" (s 0 true));
  Alcotest.(check bool) "full" true
    (Markov.Labeling.holds l "full" (s c.Models.Queue_srn.capacity false));
  (* Discouraged arrivals: marking-dependent rate lambda / (1 + q). *)
  let c' = { c with Models.Queue_srn.discouraged_arrivals = true } in
  let m' = Models.Queue_srn.mrm c' in
  let s' number up = Models.Queue_srn.state_of c' ~jobs:number ~server_up:up in
  check_close "discouraged rate" (2.0 /. 4.0)
    (Markov.Ctmc.rate (Markov.Mrm.ctmc m') (s' 3 true) (s' 4 true));
  (* Sanity: M/M/1/K with a perfectly reliable-ish server approximates the
     analytic blocking probability.  With failures so rare, compare
     against the birth-death steady state of rho = 2/3. *)
  let pi = Markov.Steady.stationary_irreducible (Markov.Mrm.ctmc m) in
  let rho = 2.0 /. 3.0 in
  let z =
    let acc = ref 0.0 in
    for k = 0 to c.Models.Queue_srn.capacity do
      acc := !acc +. (rho ** float_of_int k)
    done;
    !acc
  in
  let blocking = (rho ** float_of_int c.Models.Queue_srn.capacity) /. z in
  let full_mass =
    pi.{s c.Models.Queue_srn.capacity true}
    +. pi.{s c.Models.Queue_srn.capacity false}
  in
  check_close ~tol:2e-2 "blocking probability" blocking full_mass

let test_random_mrm () =
  let c = Models.Random_mrm.default in
  let a = Models.Random_mrm.generate ~seed:99L c in
  let b = Models.Random_mrm.generate ~seed:99L c in
  Alcotest.(check bool) "deterministic" true
    (Linalg.Csr.equal_approx
       (Markov.Ctmc.rates (Markov.Mrm.ctmc a))
       (Markov.Ctmc.rates (Markov.Mrm.ctmc b)));
  Alcotest.(check bool) "integral rewards" true
    (Markov.Mrm.all_rewards_integral a);
  let p = Models.Random_mrm.generate_problem ~seed:7L c in
  Alcotest.(check bool) "has goal" true (Array.exists Fun.id p.Perf.Problem.goal);
  Alcotest.(check bool) "positive time" true (p.Perf.Problem.time_bound > 0.0);
  (* Goal states are absorbing with zero reward (Theorem 1 normal form). *)
  Array.iteri
    (fun s in_goal ->
      if in_goal then begin
        Alcotest.(check bool) "goal absorbing" true
          (Markov.Ctmc.is_absorbing (Markov.Mrm.ctmc p.Perf.Problem.mrm) s);
        check_close "goal reward" 0.0 (Markov.Mrm.reward p.Perf.Problem.mrm s)
      end)
    p.Perf.Problem.goal

let suite =
  ( "models",
    [ Alcotest.test_case "adhoc structure" `Quick test_adhoc_structure;
      Alcotest.test_case "adhoc rewards" `Quick test_adhoc_rewards;
      Alcotest.test_case "adhoc state names" `Quick test_adhoc_state_names;
      Alcotest.test_case "adhoc Table 1 consistency" `Quick test_adhoc_table1;
      Alcotest.test_case "multiprocessor" `Quick test_multiprocessor;
      Alcotest.test_case "cluster" `Quick test_cluster;
      Alcotest.test_case "queue" `Quick test_queue;
      Alcotest.test_case "random mrm" `Quick test_random_mrm ] )
