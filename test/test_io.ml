(* Tests for the textual model format, table rendering and CSV output. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let example_text =
  "# a small repairable component\n\
   states 3\n\
   reward 0 10\n\
   reward 1 6\n\
   rate 0 1 0.1   # failure\n\
   rate 1 0 2.0\n\
   rate 1 2 0.1\n\
   rate 2 1 1.0\n\
   label up 0 1\n\
   label down 2\n\
   init 0\n"

let test_parse () =
  let doc = Io.Mrm_format.parse example_text in
  Alcotest.(check int) "states" 3 (Markov.Mrm.n_states doc.Io.Mrm_format.mrm);
  check_close "reward" 10.0 (Markov.Mrm.reward doc.Io.Mrm_format.mrm 0);
  check_close "default reward" 0.0 (Markov.Mrm.reward doc.Io.Mrm_format.mrm 2);
  check_close "rate" 2.0
    (Markov.Ctmc.rate (Markov.Mrm.ctmc doc.Io.Mrm_format.mrm) 1 0);
  Alcotest.(check bool) "label" true
    (Markov.Labeling.holds doc.Io.Mrm_format.labeling "up" 1);
  check_close "init mass" 1.0 doc.Io.Mrm_format.init.{0}

let test_roundtrip () =
  let doc = Io.Mrm_format.parse example_text in
  let doc2 = Io.Mrm_format.parse (Io.Mrm_format.print doc) in
  Alcotest.(check bool) "rates round trip" true
    (Linalg.Csr.equal_approx
       (Markov.Ctmc.rates (Markov.Mrm.ctmc doc.Io.Mrm_format.mrm))
       (Markov.Ctmc.rates (Markov.Mrm.ctmc doc2.Io.Mrm_format.mrm)));
  for s = 0 to 2 do
    check_close "rewards round trip"
      (Markov.Mrm.reward doc.Io.Mrm_format.mrm s)
      (Markov.Mrm.reward doc2.Io.Mrm_format.mrm s)
  done;
  Alcotest.(check (list string)) "labels round trip"
    (Markov.Labeling.propositions doc.Io.Mrm_format.labeling)
    (Markov.Labeling.propositions doc2.Io.Mrm_format.labeling)

let test_impulse_lines () =
  let text =
    "states 2\nreward 0 1\nrate 0 1 2.0\nimpulse 0 1 1.5\nlabel goal 1\n"
  in
  let doc = Io.Mrm_format.parse text in
  Alcotest.(check bool) "has impulses" true
    (Markov.Mrm.has_impulses doc.Io.Mrm_format.mrm);
  check_close "impulse value" 1.5 (Markov.Mrm.impulse doc.Io.Mrm_format.mrm 0 1);
  (* Round trip keeps them. *)
  let doc2 = Io.Mrm_format.parse (Io.Mrm_format.print doc) in
  check_close "round trip" 1.5 (Markov.Mrm.impulse doc2.Io.Mrm_format.mrm 0 1);
  (* Impulse without a matching transition is rejected. *)
  (match Io.Mrm_format.parse "states 2\nrate 0 1 1.0\nimpulse 1 0 2.0\n" with
   | exception Io.Mrm_format.Syntax_error _ -> ()
   | _ -> Alcotest.fail "accepted an impulse without a transition")

let expect_syntax_error ~line text =
  match Io.Mrm_format.parse text with
  | exception Io.Mrm_format.Syntax_error (_, l) ->
    Alcotest.(check int) "error line" line l
  | _ -> Alcotest.failf "accepted %S" text

let test_errors () =
  expect_syntax_error ~line:1 "reward 0 1\n";
  expect_syntax_error ~line:2 "states 2\nrate 0 5 1.0\n";
  expect_syntax_error ~line:2 "states 2\nreward 0 -1\n";
  expect_syntax_error ~line:2 "states 2\nbogus 1 2\n";
  expect_syntax_error ~line:3 "states 2\nlabel a 0\nlabel a 1\n";
  expect_syntax_error ~line:1 "states 2\ninit 0 0.5\n";
  expect_syntax_error ~line:2 "states 2\nrate 0 1 0\n"

let test_parse_file () =
  let path = Filename.temp_file "perfcheck" ".mrm" in
  let oc = open_out path in
  output_string oc example_text;
  close_out oc;
  let doc = Io.Mrm_format.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "from file" 3 (Markov.Mrm.n_states doc.Io.Mrm_format.mrm)

let test_table () =
  let rendered =
    Io.Table.render
      ~aligns:[ Io.Table.Left ]
      ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "23" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
   | header :: rule :: _ ->
     Alcotest.(check bool) "header padded" true
       (String.length header = String.length rule)
   | _ -> Alcotest.fail "missing rule");
  Alcotest.(check string) "seconds small" "< 0.01 sec" (Io.Table.seconds 0.004);
  Alcotest.(check string) "seconds" "1.50 sec" (Io.Table.seconds 1.5)

let test_csv () =
  Alcotest.(check string) "plain" "a,b\n" (Io.Csv.line [ "a"; "b" ]);
  Alcotest.(check string) "quoted comma" "\"a,b\",c\n"
    (Io.Csv.line [ "a,b"; "c" ]);
  Alcotest.(check string) "quoted quote" "\"a\"\"b\"\n" (Io.Csv.line [ "a\"b" ]);
  let rendered = Io.Csv.render ~header:[ "x" ] [ [ "1" ]; [ "2" ] ] in
  Alcotest.(check string) "render" "x\n1\n2\n" rendered

let suite =
  ( "io",
    [ Alcotest.test_case "parse" `Quick test_parse;
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "impulse lines" `Quick test_impulse_lines;
      Alcotest.test_case "syntax errors" `Quick test_errors;
      Alcotest.test_case "parse_file" `Quick test_parse_file;
      Alcotest.test_case "table rendering" `Quick test_table;
      Alcotest.test_case "csv" `Quick test_csv ] )
