(* End-to-end regression of the paper's Section 5 case study.

   The published Table 1 model evaluates Q3 to 0.49699673 (this library's
   Sericola, pseudo-Erlang and Tijms-Veldman engines agree, and a
   30-million-path Monte-Carlo run gives 0.49704 +- 0.00024); the paper
   prints 0.49540399, i.e. the authors' experiment ran a slightly
   different parameterisation than their published Table 1 (see
   EXPERIMENTS.md).  Everything structural — the N_epsilon column, the
   convergence behaviour of all three procedures — matches the paper
   exactly and is asserted here. *)

let q3_value = 0.49699673

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let q3_problem () =
  let m = Models.Adhoc.mrm () in
  let l = Models.Adhoc.labeling () in
  let idle = Markov.Labeling.sat l "call_idle" in
  let doze = Markov.Labeling.sat l "doze" in
  let phi = Array.mapi (fun i a -> a || doze.(i)) idle in
  let psi = Markov.Labeling.sat l "call_initiated" in
  let red = Perf.Reduced.reduce m ~phi ~psi in
  let init = Linalg.Vec.unit 9 Models.Adhoc.initial_state in
  Perf.Reduced.problem red ~init ~time_bound:24.0 ~reward_bound:600.0

let test_q3_value_regression () =
  let d = Perf.Sericola.solve_detailed ~epsilon:1e-10 (q3_problem ()) in
  check_close ~tol:1e-7 "q3" q3_value d.Perf.Sericola.probability;
  Alcotest.(check int) "band" 2 d.Perf.Sericola.band;
  check_close "x position" 0.0625 d.Perf.Sericola.x

(* Table 2 shape: the truncation points must equal the paper's column
   (they depend only on lambda t = 468), and the value column must
   converge monotonically from below with the paper's increments. *)
let test_table2_shape () =
  let p = q3_problem () in
  let rows =
    List.map
      (fun eps ->
        let d = Perf.Sericola.solve_detailed ~epsilon:eps p in
        (d.Perf.Sericola.steps, d.Perf.Sericola.probability))
      [ 1e-1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8 ]
  in
  let steps = List.map fst rows and values = List.map snd rows in
  Alcotest.(check (list int)) "paper's N column"
    [ 496; 519; 536; 551; 563; 574; 585; 594 ]
    steps;
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone convergence from below" true
    (increasing values);
  (* The coarsest truncation loses about 0.047 of the value, like the
     paper's 0.4483 vs 0.4954. *)
  let first = List.hd values and last = List.nth values 7 in
  check_close ~tol:0.15 "coarse-truncation deficit" 0.047 (last -. first)

(* Table 3 shape: pseudo-Erlang converges from below; the error roughly
   halves per doubling of k (the paper's column: 17.1%, 8.2%, 3.7%, 1.6%,
   0.7%, ...). *)
let test_table3_shape () =
  let p = q3_problem () in
  let errors =
    List.map
      (fun k ->
        let v = Perf.Erlang_approx.solve ~epsilon:1e-10 ~phases:k p in
        if v > q3_value +. 1e-6 then
          Alcotest.failf "erlang k=%d overshoots: %.8f" k v;
        (q3_value -. v) /. q3_value)
      [ 1; 2; 4; 8; 16 ]
  in
  (match errors with
   | e1 :: rest ->
     check_close ~tol:0.2 "k=1 error about 16%" 0.16 e1;
     let rec halving prev = function
       | [] -> ()
       | e :: rest ->
         let ratio = prev /. e in
         if ratio < 1.5 || ratio > 3.0 then
           Alcotest.failf "error ratio %.2f not ~2" ratio;
         halving e rest
     in
     halving e1 rest
   | [] -> assert false)

(* Table 4 shape: the discretisation converges with error ~ d, from
   above on this model. *)
let test_table4_shape () =
  let p = q3_problem () in
  let value d = Perf.Discretization.solve ~step:d p in
  let v32 = value (1.0 /. 32.0) and v64 = value (1.0 /. 64.0) in
  Alcotest.(check bool) "from above" true (v32 > q3_value && v64 > q3_value);
  Alcotest.(check bool) "decreasing toward the limit" true (v64 < v32);
  let e32 = v32 -. q3_value and e64 = v64 -. q3_value in
  (* The paper's Table 4 errors: 0.05%, 0.03%, 0.01% — ratio about 2 per
     halving once d is small; at this coarseness the ratio is smaller but
     must exceed 1. *)
  Alcotest.(check bool) "error shrinks" true (e64 < e32)

let test_q1_q2_verdicts () =
  let ctx =
    Checker.make ~epsilon:1e-10 (Models.Adhoc.mrm ()) (Models.Adhoc.labeling ())
  in
  let holds text =
    Checker.holds ctx (Logic.Parser.state_formula text)
      Models.Adhoc.initial_state
  in
  Alcotest.(check bool) "Q1 holds" true (holds Models.Adhoc.q1);
  Alcotest.(check bool) "Q2 holds" true (holds Models.Adhoc.q2);
  (* The paper's head-line finding: Q3 is just below the 0.5 bound. *)
  Alcotest.(check bool) "Q3 fails" false (holds Models.Adhoc.q3)

(* The three procedures agree on Q3 to three decimals at practical
   settings (the paper's cross-method observation). *)
let test_engines_cross_check () =
  let p = q3_problem () in
  let sericola = Perf.Sericola.solve ~epsilon:1e-10 p in
  let erlang = Perf.Erlang_approx.solve ~phases:512 p in
  let discretise = Perf.Discretization.solve ~step:(1.0 /. 32.0) p in
  check_close ~tol:3e-4 "erlang vs sericola" sericola erlang;
  check_close ~tol:3e-4 "discretise vs sericola" sericola discretise

(* Checking Q3 on the SRN-generated model must give the same value. *)
let test_srn_model_q3 () =
  let mrm = Models.Adhoc_srn.mrm () in
  let labeling = Models.Adhoc_srn.labeling () in
  let ctx = Checker.make ~epsilon:1e-10 mrm labeling in
  match
    Checker.eval_query ctx
      (Logic.Parser.query
         "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )")
  with
  | Checker.Numeric probs ->
    (* The SRN's initial marking is state 0. *)
    check_close ~tol:1e-7 "same value" q3_value probs.{0}
  | _ -> Alcotest.fail "expected numeric"

let suite =
  ( "case study",
    [ Alcotest.test_case "Q3 value regression" `Quick test_q3_value_regression;
      Alcotest.test_case "Table 2 shape" `Slow test_table2_shape;
      Alcotest.test_case "Table 3 shape" `Quick test_table3_shape;
      Alcotest.test_case "Table 4 shape" `Slow test_table4_shape;
      Alcotest.test_case "Q1/Q2/Q3 verdicts" `Quick test_q1_q2_verdicts;
      Alcotest.test_case "engines cross-check" `Slow test_engines_cross_check;
      Alcotest.test_case "SRN model Q3" `Quick test_srn_model_q3 ] )
