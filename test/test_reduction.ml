(* Tests for the quotient-and-prune reduction pipeline: exactness on
   random models (within the engines' truncation error), strict
   bit-identity whenever no stage fires, the counting abstraction on
   planted-symmetry models, and consistent reduction.* telemetry. *)

let snap x = Float.max (1.0 /. 16.0) (Float.round (x *. 16.0) /. 16.0)

(* Deterministic query bounds for a seeded random model: a horizon in
   (0.5, 3] and a reward bound that actually bites when rewards exist. *)
let bounds ~seed m =
  let rng = Sim.Rng.create ~seed:(Int64.logxor seed 0x2545F4914F6CDD1DL) in
  let t = snap (0.5 +. (Sim.Rng.float rng *. 2.5)) in
  let rho_max = Markov.Mrm.max_reward m in
  let r =
    if rho_max > 0.0 then
      snap ((0.2 +. (Sim.Rng.float rng *. 0.7)) *. rho_max *. t)
    else 1.0
  in
  (t, r)

let masks labeling =
  let a = Markov.Labeling.sat labeling "a"
  and b = Markov.Labeling.sat labeling "b"
  and c = Markov.Labeling.sat labeling "c" in
  let phi = Array.init (Array.length a) (fun s -> a.(s) || b.(s)) in
  (phi, c)

let counter tel name = Option.value ~default:0 (Telemetry.counter tel name)

(* The pipeline's no-op promise, read back from its own telemetry: no
   state pruned or lumped in prepare, and no per-solve init pruning. *)
let nothing_fired tel =
  counter tel "reduction.states_before" = counter tel "reduction.states_after"
  && counter tel "reduction.pruned_states" = 0
  && counter tel "reduction.lumped" = 0
  && counter tel "reduction.init_pruned_states" = 0

let pipeline_matches_baseline =
  QCheck2.Test.make ~count:30
    ~name:"pipeline equals unreduced solve on random labeled MRMs"
    QCheck2.Gen.(int_range 0 20_000)
    (fun seed ->
      let seed64 = Int64.of_int seed in
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:seed64
          Models.Random_mrm.default
      in
      let phi, psi = masks labeling in
      let time_bound, reward_bound = bounds ~seed:seed64 m in
      (* A truncation epsilon well below the comparison tolerance: the
         pipeline may change the uniformisation rate (pruning removes
         states), so full and reduced runs only agree up to the engines'
         truncation error. *)
      let solve = Perf.Engine.solve (Perf.Engine.Occupation_time { epsilon = 1e-14 }) in
      let baseline =
        Perf.Reduced.until_probabilities_via solve m ~phi ~psi ~time_bound
          ~reward_bound
      in
      let tel = Telemetry.create () in
      let piped =
        Perf.Reduction.until_probabilities_via ~telemetry:tel solve m ~phi
          ~psi ~time_bound ~reward_bound
      in
      Array.iteri
        (fun s expected ->
          if Float.abs (expected -. piped.{s}) > 1e-12 then
            QCheck2.Test.fail_reportf
              "seed %d state %d: baseline %.17g, pipeline %.17g" seed s
              expected piped.{s})
        (Linalg.Vec.to_array baseline);
      if nothing_fired tel && piped <> baseline then
        QCheck2.Test.fail_reportf
          "seed %d: pipeline reported itself a no-op but the answers are \
           not bit-identical"
          seed;
      true)

let impulse_models_pass_through =
  QCheck2.Test.make ~count:15
    ~name:"impulse models bypass the pipeline bit-identically"
    QCheck2.Gen.(int_range 0 20_000)
    (fun seed ->
      let seed64 = Int64.of_int seed in
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:seed64
          Models.Random_mrm.with_impulses
      in
      let phi, psi = masks labeling in
      let time_bound, reward_bound = bounds ~seed:seed64 m in
      let solve =
        Perf.Engine.solve (Perf.Engine.Discretize { step = 1.0 /. 16.0 })
      in
      let baseline =
        Perf.Reduced.until_probabilities_via solve m ~phi ~psi ~time_bound
          ~reward_bound
      in
      let tel = Telemetry.create () in
      let piped =
        Perf.Reduction.until_probabilities_via ~telemetry:tel solve m ~phi
          ~psi ~time_bound ~reward_bound
      in
      (* Theorem 1 may cut every impulse-carrying transition (absorbed
         states lose their transitions), leaving an impulse-free reduced
         model on which the pipeline legitimately runs; only when
         impulses survive must it stand aside entirely. *)
      if Markov.Mrm.has_impulses (Perf.Reduced.reduce m ~phi ~psi).Perf.Reduced.mrm
      then begin
        if piped <> baseline then
          QCheck2.Test.fail_reportf "seed %d: impulse model answers differ"
            seed;
        if counter tel "reduction.runs" <> 0 then
          QCheck2.Test.fail_reportf
            "seed %d: pipeline ran on a model with surviving impulses" seed
      end
      else
        Array.iteri
          (fun s expected ->
            if Float.abs (expected -. piped.{s}) > 1e-12 then
              QCheck2.Test.fail_reportf
                "seed %d state %d: baseline %.17g, pipeline %.17g" seed s
                expected piped.{s})
          (Linalg.Vec.to_array baseline);
      true)

let pool_dispatch_is_bit_identical =
  QCheck2.Test.make ~count:10
    ~name:"pooled per-initial-state dispatch is bit-identical"
    QCheck2.Gen.(int_range 0 20_000)
    (fun seed ->
      let seed64 = Int64.of_int seed in
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:seed64
          Models.Random_mrm.default
      in
      let phi, psi = masks labeling in
      let time_bound, reward_bound = bounds ~seed:seed64 m in
      let solve = Perf.Engine.solve Perf.Engine.default in
      Parallel.Pool.with_pool ~jobs:3 (fun pool ->
          let seq =
            Perf.Reduced.until_probabilities_via solve m ~phi ~psi
              ~time_bound ~reward_bound
          in
          let pooled =
            Perf.Reduced.until_probabilities_via ~pool solve m ~phi ~psi
              ~time_bound ~reward_bound
          in
          if pooled <> seq then
            QCheck2.Test.fail_reportf "seed %d: Reduced pool dispatch differs"
              seed;
          let seq_pipe =
            Perf.Reduction.until_probabilities_via solve m ~phi ~psi
              ~time_bound ~reward_bound
          in
          let pooled_pipe =
            Perf.Reduction.until_probabilities_via ~pool solve m ~phi ~psi
              ~time_bound ~reward_bound
          in
          if pooled_pipe <> seq_pipe then
            QCheck2.Test.fail_reportf
              "seed %d: Reduction pool dispatch differs" seed);
      true)

let joint_matrix_pool_is_bit_identical =
  QCheck2.Test.make ~count:10
    ~name:"joint_matrix row accumulation is bit-identical under a pool"
    QCheck2.Gen.(int_range 0 20_000)
    (fun seed ->
      let m =
        Models.Random_mrm.generate ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let t = 1.5 in
      let r = 0.6 *. Markov.Mrm.max_reward m *. t in
      let seq = Perf.Sericola.joint_matrix m ~t ~r in
      Parallel.Pool.with_pool ~jobs:4 (fun pool ->
          let pooled = Perf.Sericola.joint_matrix ~pool m ~t ~r in
          if pooled <> seq then
            QCheck2.Test.fail_reportf "seed %d: joint_matrix differs" seed);
      true)

(* ------------------------------------------------------------------ *)
(* Planted symmetry: the quotient must hit the counting abstraction.   *)

let symmetry_configs =
  [ (0xBEEFL, { Models.Symmetric.default with components = 3 });
    (0x5EEDL, { Models.Symmetric.default with components = 4 });
    (0xACEDL,
     { Models.Symmetric.default with components = 3; local_states = 4 }) ]

let test_counting_abstraction () =
  List.iter
    (fun (seed, config) ->
      let m, labeling = Models.Symmetric.generate ~seed config in
      let l = Markov.Lumping.compute m labeling in
      Alcotest.(check int)
        (Printf.sprintf "quotient size (k=%d, l=%d)" config.components
           config.local_states)
        (Models.Symmetric.counting_states config)
        l.Markov.Lumping.n_blocks)
    symmetry_configs

let test_pipeline_hits_counting_abstraction () =
  List.iter
    (fun (seed, config) ->
      let m, labeling = Models.Symmetric.generate ~seed config in
      let n = Models.Symmetric.size config in
      let phi = Array.make n true in
      let psi = Markov.Labeling.sat labeling "all_top" in
      let tel = Telemetry.create () in
      let r = Perf.Reduction.prepare ~telemetry:tel m ~phi ~psi in
      (* Theorem 1 amalgamates the single all-top state into GOAL and
         adds an (unreachable) FAIL, so the pipeline sees l^k + 1 states
         and must collapse the tracked transient states to their
         multiset classes: counting - 1 blocks, plus GOAL and FAIL. *)
      let expected_before = n + 1 in
      let expected_after = Models.Symmetric.counting_states config + 1 in
      Alcotest.(check int) "stats.states_before" expected_before
        r.Perf.Reduction.stats.Perf.Reduction.states_before;
      Alcotest.(check int) "stats.states_after" expected_after
        r.Perf.Reduction.stats.Perf.Reduction.states_after;
      Alcotest.(check bool) "lumped" true
        r.Perf.Reduction.stats.Perf.Reduction.lumped;
      (* Telemetry mirrors the stats exactly. *)
      Alcotest.(check int) "telemetry states_before" expected_before
        (counter tel "reduction.states_before");
      Alcotest.(check int) "telemetry states_after" expected_after
        (counter tel "reduction.states_after");
      Alcotest.(check int) "telemetry runs" 1 (counter tel "reduction.runs"))
    symmetry_configs

let test_symmetric_answers_match () =
  let seed, config = List.hd symmetry_configs in
  let m, labeling = Models.Symmetric.generate ~seed config in
  let n = Models.Symmetric.size config in
  let phi = Array.make n true in
  let psi = Markov.Labeling.sat labeling "all_top" in
  let time_bound = 1.25 in
  let reward_bound = 0.5 *. Markov.Mrm.max_reward m *. time_bound in
  let solve = Perf.Engine.solve (Perf.Engine.Occupation_time { epsilon = 1e-12 }) in
  let baseline =
    Perf.Reduced.until_probabilities_via solve m ~phi ~psi ~time_bound
      ~reward_bound
  in
  let piped =
    Perf.Reduction.until_probabilities_via solve m ~phi ~psi ~time_bound
      ~reward_bound
  in
  Array.iteri
    (fun s expected ->
      if Float.abs (expected -. piped.{s}) > 1e-12 then
        Alcotest.failf "state %d: baseline %.17g, pipeline %.17g" s expected
          piped.{s})
    (Linalg.Vec.to_array baseline)

(* The tracked multiprocessor collapses onto the birth-death chain: the
   engine-level pipeline must give the pooled model's answer. *)
let test_tracked_multiprocessor_collapses () =
  let c = { Models.Multiprocessor.default with n_processors = 5 } in
  let t = 100.0 and r = 250.0 in
  let tracked = Models.Multiprocessor.tracked_performability c ~t ~r in
  let pooled = Models.Multiprocessor.performability c ~t ~r in
  let spec = Perf.Engine.Occupation_time { epsilon = 1e-12 } in
  let tel = Telemetry.create () in
  let reduced_answer =
    Perf.Engine.solve ~telemetry:tel ~reduction:Perf.Reduction.default spec
      tracked
  in
  let full_answer = Perf.Engine.solve spec tracked in
  let pooled_answer = Perf.Engine.solve spec pooled in
  Alcotest.(check int) "quotient size"
    (c.Models.Multiprocessor.n_processors + 1)
    (counter tel "reduction.states_after");
  if Float.abs (reduced_answer -. full_answer) > 1e-12 then
    Alcotest.failf "reduced %.17g vs full %.17g" reduced_answer full_answer;
  if Float.abs (reduced_answer -. pooled_answer) > 1e-10 then
    Alcotest.failf "reduced %.17g vs pooled model %.17g" reduced_answer
      pooled_answer

(* Opt-out: config none must leave everything untouched, bit for bit. *)
let test_opt_out_is_identity () =
  let seed = 0xF00DL in
  let m, labeling =
    Models.Random_mrm.generate_labeled ~seed Models.Random_mrm.default
  in
  let phi, psi = masks labeling in
  let time_bound, reward_bound = bounds ~seed m in
  let solve = Perf.Engine.solve Perf.Engine.default in
  let baseline =
    Perf.Reduced.until_probabilities_via solve m ~phi ~psi ~time_bound
      ~reward_bound
  in
  let tel = Telemetry.create () in
  let off =
    Perf.Reduction.until_probabilities_via ~config:Perf.Reduction.none
      ~telemetry:tel solve m ~phi ~psi ~time_bound ~reward_bound
  in
  Alcotest.(check bool) "bit-identical" true (off = baseline);
  Alcotest.(check int) "no runs recorded" 0 (counter tel "reduction.runs");
  (* And the problem-level pipeline returns the problem itself. *)
  let p = Models.Multiprocessor.tracked_performability
      { Models.Multiprocessor.default with n_processors = 3 } ~t:10.0 ~r:20.0
  in
  Alcotest.(check bool) "apply none is physical identity" true
    (Perf.Reduction.apply Perf.Reduction.none p == p)

let suite =
  ( "reduction",
    [ QCheck_alcotest.to_alcotest pipeline_matches_baseline;
      QCheck_alcotest.to_alcotest impulse_models_pass_through;
      QCheck_alcotest.to_alcotest pool_dispatch_is_bit_identical;
      QCheck_alcotest.to_alcotest joint_matrix_pool_is_bit_identical;
      Alcotest.test_case "counting abstraction" `Quick
        test_counting_abstraction;
      Alcotest.test_case "pipeline hits counting abstraction" `Quick
        test_pipeline_hits_counting_abstraction;
      Alcotest.test_case "symmetric answers match" `Quick
        test_symmetric_answers_match;
      Alcotest.test_case "tracked multiprocessor collapses" `Quick
        test_tracked_multiprocessor_collapses;
      Alcotest.test_case "opt-out is identity" `Quick test_opt_out_is_identity
    ] )
