(* Tests for the CSRL syntax: lexer, parser, pretty-printer, helpers. *)

open Logic

let formula = Alcotest.testable Ast.pp Ast.equal

let parse = Parser.state_formula

let test_lexer () =
  let tokens text = List.map fst (Lexer.tokenize text) in
  Alcotest.(check bool) "keywords" true
    (tokens "true false P S X U F G"
     = [ Lexer.TRUE; FALSE; PROB; STEADY; NEXT; UNTIL; EVENTUALLY; GLOBALLY;
         EOF ]);
  Alcotest.(check bool) "symbols" true
    (tokens "! & | -> ( ) [ ] <= < >= > =?"
     = [ Lexer.BANG; AMP; BAR; ARROW; LPAREN; RPAREN; LBRACKET; RBRACKET;
         LE; LT; GE; GT; QUERY; EOF ]);
  (match tokens "foo_bar1 0.5 2e-3" with
   | [ Lexer.IDENT "foo_bar1"; NUMBER a; NUMBER b; EOF ] ->
     Alcotest.(check (float 1e-12)) "number" 0.5 a;
     Alcotest.(check (float 1e-12)) "exponent" 2e-3 b
   | _ -> Alcotest.fail "bad identifier/number lexing");
  (try
     ignore (Lexer.tokenize "a @ b");
     Alcotest.fail "accepted '@'"
   with Lexer.Error (_, pos) -> Alcotest.(check int) "error position" 2 pos)

let test_parse_boolean () =
  Alcotest.check formula "atoms" (Ast.Ap "a") (parse "a");
  Alcotest.check formula "true" Ast.True (parse "true");
  Alcotest.check formula "precedence and over or"
    (Ast.Or (Ast.Ap "a", Ast.And (Ast.Ap "b", Ast.Ap "c")))
    (parse "a | b & c");
  Alcotest.check formula "negation binds tight"
    (Ast.Or (Ast.Not (Ast.Ap "a"), Ast.Ap "b"))
    (parse "!a | b");
  Alcotest.check formula "parens"
    (Ast.And (Ast.Or (Ast.Ap "a", Ast.Ap "b"), Ast.Ap "c"))
    (parse "(a | b) & c");
  Alcotest.check formula "implication right assoc"
    (Ast.Implies (Ast.Ap "a", Ast.Implies (Ast.Ap "b", Ast.Ap "c")))
    (parse "a -> b -> c");
  Alcotest.check formula "or left assoc"
    (Ast.Or (Ast.Or (Ast.Ap "a", Ast.Ap "b"), Ast.Ap "c"))
    (parse "a | b | c")

let upto = Numerics.Time_interval.upto
let unb = Numerics.Time_interval.unbounded

let test_parse_probabilistic () =
  Alcotest.check formula "until with both bounds"
    (Ast.Prob
       (Ast.Gt, 0.5,
        Ast.Until
          (upto 24.0, upto 600.0,
           Ast.Or (Ast.Ap "call_idle", Ast.Ap "doze"),
           Ast.Ap "call_initiated")))
    (parse "P>0.5 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )");
  Alcotest.check formula "eventually reward bound (Q1)"
    (Ast.Prob
       (Ast.Gt, 0.5,
        Ast.Until (unb, upto 600.0, Ast.True, Ast.Ap "call_incoming")))
    (parse "P>0.5 ( F[r<=600] call_incoming )");
  Alcotest.check formula "csl-style shorthand"
    (Ast.Prob
       (Ast.Ge, 0.9, Ast.Until (upto 2.0, unb, Ast.Ap "a", Ast.Ap "b")))
    (parse "P>=0.9 ( a U<=2 b )");
  Alcotest.check formula "next with bounds"
    (Ast.Prob (Ast.Lt, 0.1, Ast.Next (upto 1.0, upto 2.0, Ast.Ap "a")))
    (parse "P<0.1 ( X[t<=1][r<=2] a )");
  Alcotest.check formula "bounds in either order"
    (parse "P<0.1 ( X[t<=1][r<=2] a )")
    (parse "P<0.1 ( X[r<=2][t<=1] a )");
  Alcotest.check formula "steady"
    (Ast.Steady (Ast.Ge, 0.99, Ast.Ap "up"))
    (parse "S>=0.99 ( up )");
  (* G is dualised: P>=0.9 (G a) = P<=0.1 (F !a). *)
  Alcotest.check formula "globally dualised"
    (Ast.Prob
       (Ast.Le, 0.09999999999999998,
        Ast.Until (unb, unb, Ast.True, Ast.Not (Ast.Ap "a"))))
    (parse "P>=0.9 ( G a )")

let test_parse_queries () =
  (match Parser.query "P=? ( a U[t<=5] b )" with
   | Ast.Prob_query (Ast.Until (i, j, Ast.Ap "a", Ast.Ap "b")) ->
     Alcotest.(check bool) "time bound" true (Numerics.Time_interval.equal i (upto 5.0));
     Alcotest.(check bool) "no reward bound" true (Numerics.Time_interval.equal j unb)
   | _ -> Alcotest.fail "bad P=? parse");
  (match Parser.query "S=? ( up )" with
   | Ast.Steady_query (Ast.Ap "up") -> ()
   | _ -> Alcotest.fail "bad S=? parse");
  (match Parser.query "a & b" with
   | Ast.Formula (Ast.And (Ast.Ap "a", Ast.Ap "b")) -> ()
   | _ -> Alcotest.fail "bad plain-formula query")

let expect_error text =
  match parse text with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.failf "accepted %S" text

let test_parse_errors () =
  expect_error "";
  expect_error "a |";
  expect_error "P>0.5 ( a )";          (* state formula where path expected *)
  expect_error "P ( X a )";            (* missing comparison *)
  expect_error "a U[t<=1][t<=2] b";    (* duplicate time bound *)
  expect_error "P>0.5 ( a U[x<=1] b )";(* bad bound prefix *)
  expect_error "a b";                  (* trailing input *)
  expect_error "P>0.5 ( a U b ";       (* unclosed paren *)
  (match Parser.query "P=? ( G a )" with
   | exception Parser.Parse_error _ -> ()
   | _ -> Alcotest.fail "accepted G in quantitative query")

let test_helpers () =
  Alcotest.(check bool) "compare Ge" true (Ast.compare_holds Ast.Ge 0.5 0.5);
  Alcotest.(check bool) "compare Gt" false (Ast.compare_holds Ast.Gt 0.5 0.5);
  Alcotest.(check bool) "compare Lt" true (Ast.compare_holds Ast.Lt 0.5 0.4);
  Alcotest.(check bool) "compare Le" true (Ast.compare_holds Ast.Le 0.5 0.5);
  Alcotest.(check bool) "negate" true
    (Ast.negate_comparison Ast.Lt = Ast.Ge
     && Ast.negate_comparison Ast.Ge = Ast.Lt
     && Ast.negate_comparison Ast.Le = Ast.Gt
     && Ast.negate_comparison Ast.Gt = Ast.Le);
  Alcotest.(check bool) "dual" true
    (Ast.dual_comparison Ast.Lt = Ast.Gt && Ast.dual_comparison Ast.Le = Ast.Ge);
  Alcotest.(check (list string)) "atomic propositions" [ "a"; "b"; "c" ]
    (Ast.atomic_propositions
       (parse "P>0.5 ( (a | b) U[t<=1] c ) & a"));
  Alcotest.(check bool) "size grows" true
    (Ast.size (parse "a & b") > Ast.size (parse "a"));
  (match Ast.eventually (Ast.Ap "x") with
   | Ast.Until (i, j, Ast.True, Ast.Ap "x") ->
     Alcotest.(check bool) "eventually unbounded" true
       (Numerics.Time_interval.equal i unb && Numerics.Time_interval.equal j unb)
   | _ -> Alcotest.fail "eventually shape")

(* ---------------- round-trip property ------------------------------ *)

let gen_formula =
  let open QCheck2.Gen in
  let gen_interval =
    oneof
      [ return unb;
        map (fun b -> upto (Float.of_int b)) (int_range 0 99);
        map (fun a -> Numerics.Time_interval.from (Float.of_int a)) (int_range 1 99);
        map2
          (fun a len ->
            Numerics.Time_interval.between (Float.of_int a)
              (Float.of_int (a + len)))
          (int_range 1 50) (int_range 0 49) ]
  in
  let gen_cmp = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let gen_prob = map (fun p -> float_of_int p /. 100.0) (int_range 0 100) in
  let gen_ap = map (fun c -> Ast.Ap (Printf.sprintf "p%d" c)) (int_range 0 5) in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ gen_ap; return Ast.True; return Ast.False ]
      else
        oneof
          [ gen_ap;
            map (fun f -> Ast.Not f) (self (depth - 1));
            map2 (fun f g -> Ast.And (f, g)) (self (depth - 1)) (self (depth - 1));
            map2 (fun f g -> Ast.Or (f, g)) (self (depth - 1)) (self (depth - 1));
            map2
              (fun f g -> Ast.Implies (f, g))
              (self (depth - 1))
              (self (depth - 1));
            map3
              (fun cmp p f -> Ast.Steady (cmp, p, f))
              gen_cmp gen_prob (self (depth - 1));
            (let* cmp = gen_cmp in
             let* p = gen_prob in
             let* i = gen_interval in
             let* j = gen_interval in
             let* inner = self (depth - 1) in
             oneof
               [ return (Ast.Prob (cmp, p, Ast.Next (i, j, inner)));
                 map
                   (fun g -> Ast.Prob (cmp, p, Ast.Until (i, j, inner, g)))
                   (self (depth - 1)) ]) ])
    3

let prop_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"parse (print f) = f"
    ~print:Ast.to_string gen_formula (fun f ->
      Ast.equal f (Parser.state_formula (Ast.to_string f)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "logic",
    [ Alcotest.test_case "lexer" `Quick test_lexer;
      Alcotest.test_case "boolean layer" `Quick test_parse_boolean;
      Alcotest.test_case "probabilistic operators" `Quick
        test_parse_probabilistic;
      Alcotest.test_case "queries" `Quick test_parse_queries;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "helpers" `Quick test_helpers;
      q prop_roundtrip ] )
