(* On-the-fly exploration: the guarded-command language (lib/lang) and
   the sliding-window truncated uniformisation engine (lib/explore). *)

let check_float = Alcotest.(check (float 1e-9))

(* A birth-death .gcm whose explicit twin is easy to build by hand. *)
let birth_death_src =
  {|
const int N = 6;
const double birth = 2.0;

module bd
  x : [0..N] init 0;
  [] x < N -> birth : (x'=x+1);
  [] x > 0 -> 1.0 * x : (x'=x-1);
endmodule

label "empty" = x=0;
label "full" = x=N;

rewards
  x > 0 : 0.5 * x;
endrewards
|}

let birth_death_mrm () =
  let n = 7 in
  let triples = ref [] in
  for x = 0 to n - 1 do
    if x < n - 1 then triples := (x, x + 1, 2.0) :: !triples;
    if x > 0 then triples := (x, x - 1, float_of_int x) :: !triples
  done;
  let ctmc = Markov.Ctmc.of_transitions ~n !triples in
  let rewards = Array.init n (fun x -> 0.5 *. float_of_int x) in
  Markov.Mrm.make ctmc ~rewards

let compile_exn src =
  match Lang.Gcm.of_string src with
  | Ok succ -> succ
  | Error msg -> Alcotest.failf "unexpected .gcm error: %s" msg

let test_gcm_compiles () =
  let succ = compile_exn birth_death_src in
  Alcotest.(check (array string)) "vars" [| "x" |] succ.Explore.Succ.var_names;
  Alcotest.(check (list string))
    "props" [ "empty"; "full" ] succ.Explore.Succ.propositions;
  Alcotest.(check string) "describe" "x=0"
    (Explore.Succ.describe succ succ.Explore.Succ.initial);
  check_float "reward" 1.5 (succ.Explore.Succ.reward [| 3 |]);
  Alcotest.(check bool) "empty holds" true
    (succ.Explore.Succ.holds [| 0 |] "empty");
  match succ.Explore.Succ.successors [| 3 |] with
  | [ (up, r_up); (down, r_down) ] ->
    Alcotest.(check (array int)) "up" [| 4 |] up;
    Alcotest.(check (array int)) "down" [| 2 |] down;
    check_float "birth rate" 2.0 r_up;
    check_float "death rate" 3.0 r_down
  | l -> Alcotest.failf "expected 2 successors, got %d" (List.length l)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_gcm_errors () =
  let expect_error needle src =
    match Lang.Gcm.of_string src with
    | Ok _ -> Alcotest.failf "expected an error mentioning %S" needle
    | Error msg ->
      if not (contains msg needle) then
        Alcotest.failf "error %S does not mention %S" msg needle
  in
  expect_error "1:1" "garbage";
  expect_error "unknown name 'y'"
    "module m x : [0..1] init 0; [] y > 0 -> 1 : true; endmodule";
  expect_error "expected bool"
    "module m x : [0..1] init 0; [] x -> 1 : true; endmodule";
  expect_error "outside [0..1]"
    "module m x : [0..1] init 2; [] x > 0 -> 1 : true; endmodule"

let classify_goal succ goal s =
  if succ.Explore.Succ.holds s goal then Explore.Windowed.Absorb { goal = true }
  else Explore.Windowed.Transient { counts = false }

let solve_result = function
  | Explore.Windowed.Bounded r -> r
  | Explore.Windowed.Reward_bound_active _ ->
    Alcotest.fail "unexpected reward-bound abort"

(* Windowed until-probability on the .gcm birth-death chain must agree
   with explicit reachability on the hand-built twin (goal absorbing). *)
let test_windowed_vs_explicit () =
  let succ = compile_exn birth_death_src in
  let space = Explore.Space.create succ in
  let epsilon = 1e-9 in
  let t = 1.5 in
  let r =
    solve_result
      (Explore.Windowed.solve ~epsilon
         ~classify:(classify_goal succ "full")
         ~init:[ (succ.Explore.Succ.initial, 1.0) ]
         ~t ~reward_bound:None space)
  in
  (* Explicit twin: make the goal state absorbing, then transient mass. *)
  let mrm = birth_death_mrm () in
  let chain = Markov.Mrm.ctmc mrm in
  let n = Markov.Ctmc.n_states chain in
  let triples = ref [] in
  for s = 0 to n - 1 do
    if s <> n - 1 then
      Linalg.Csr.iter_row (Markov.Ctmc.rates chain) s (fun j rate ->
          if rate > 0.0 then triples := (s, j, rate) :: !triples)
  done;
  let absorbed = Markov.Ctmc.of_transitions ~n !triples in
  let init = Linalg.Vec.unit n 0 in
  let goal = Array.init n (fun s -> s = n - 1) in
  let reference =
    Markov.Transient.reachability ~epsilon:1e-12 absorbed ~init ~goal ~t
  in
  Alcotest.(check bool) "delta certified" true (r.Explore.Windowed.delta <= epsilon);
  Alcotest.(check bool)
    (Printf.sprintf "windowed %.12g vs explicit %.12g within %g"
       r.Explore.Windowed.value reference
       (r.Explore.Windowed.delta +. 1e-10))
    true
    (Float.abs (r.Explore.Windowed.value -. reference)
     <= r.Explore.Windowed.delta +. 1e-10)

(* A run that never truncates must be bit-identical to truncate:false. *)
let test_bit_identity_when_untruncated () =
  let succ = compile_exn birth_death_src in
  let solve ~truncate =
    let space = Explore.Space.create succ in
    solve_result
      (Explore.Windowed.solve ~truncate ~epsilon:1e-6
         ~classify:(classify_goal succ "full")
         ~init:[ (succ.Explore.Succ.initial, 1.0) ]
         ~t:0.5 ~reward_bound:None space)
  in
  let truncated = solve ~truncate:true in
  let full = solve ~truncate:false in
  check_float "no mass dropped" 0.0
    truncated.Explore.Windowed.stats.Explore.Windowed.mass_dropped;
  Alcotest.(check bool) "bit-identical lower" true
    (Float.equal truncated.Explore.Windowed.lower full.Explore.Windowed.lower);
  Alcotest.(check bool) "bit-identical value" true
    (Float.equal truncated.Explore.Windowed.value full.Explore.Windowed.value)

(* Warm spaces (reused across solves) must not change results. *)
let test_warm_space_deterministic () =
  let succ = compile_exn birth_death_src in
  let space = Explore.Space.create succ in
  let solve space =
    solve_result
      (Explore.Windowed.solve ~epsilon:1e-7
         ~classify:(classify_goal succ "full")
         ~init:[ (succ.Explore.Succ.initial, 1.0) ]
         ~t:2.0 ~reward_bound:None space)
  in
  let cold = solve space in
  let warm = solve space in
  let fresh = solve (Explore.Space.create succ) in
  Alcotest.(check bool) "warm = cold" true
    (Float.equal cold.Explore.Windowed.value warm.Explore.Windowed.value);
  Alcotest.(check bool) "fresh = cold" true
    (Float.equal cold.Explore.Windowed.value fresh.Explore.Windowed.value)

let test_materialise_roundtrip () =
  let succ = compile_exn birth_death_src in
  let space = Explore.Space.create succ in
  match Explore.Materialise.materialise space with
  | Error n -> Alcotest.failf "materialise hit the limit at %d states" n
  | Ok (mrm, labeling, init) ->
    Alcotest.(check int) "init id" 0 init;
    Alcotest.(check int) "n states" 7 (Markov.Mrm.n_states mrm);
    let reference = birth_death_mrm () in
    for id = 0 to 6 do
      let x = (Explore.Space.state space id).(0) in
      check_float
        (Printf.sprintf "reward of x=%d" x)
        (Markov.Mrm.reward reference x)
        (Markov.Mrm.reward mrm id);
      for id' = 0 to 6 do
        let x' = (Explore.Space.state space id').(0) in
        if x <> x' then
          check_float
            (Printf.sprintf "rate x=%d -> x=%d" x x')
            (Markov.Ctmc.rate (Markov.Mrm.ctmc reference) x x')
            (Markov.Ctmc.rate (Markov.Mrm.ctmc mrm) id id')
      done
    done;
    Alcotest.(check bool) "full label" true
      (Markov.Labeling.holds labeling "full"
         (let found = ref (-1) in
          for id = 0 to 6 do
            if (Explore.Space.state space id).(0) = 6 then found := id
          done;
          !found))

(* ------------------------------------------------------------------ *)
(* qcheck: random .gcm programs, windowed vs explicit within delta.    *)

(* Emit a random two-variable program.  The shape is constrained so the
   program always typechecks and every update stays in range (the guard
   of each command implies its assignments are legal); everything else —
   ranges, initial point, rates, the coupled drift command, the
   branching choice, the goal front — varies with the draw. *)
let random_gcm_src ~nx ~ny ~ix ~iy ~rates ~coupled ~branching ~front =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "module m\n";
  add "  x : [0..%d] init %d;\n" nx ix;
  add "  y : [0..%d] init %d;\n" ny iy;
  add "  [] x < %d -> %.17g : (x'=x+1);\n" nx rates.(0);
  add "  [] x > 0 -> %.17g : (x'=x-1);\n" rates.(1);
  add "  [] y < %d -> %.17g : (y'=y+1);\n" ny rates.(2);
  add "  [] y > 0 -> %.17g : (y'=y-1);\n" rates.(3);
  if coupled then
    add "  [] x > 0 & y < %d -> %.17g : (x'=x-1) & (y'=y+1);\n" ny rates.(4);
  if branching then
    add "  [] x = 0 & y = 0 -> %.17g : (x'=1) + %.17g : (y'=1);\n" rates.(5)
      rates.(5);
  add "endmodule\n";
  add "label \"goal\" = x + y >= %d;\n" front;
  add "rewards\n  true : 0.25 * (x + y);\nendrewards\n";
  Buffer.contents buf

let gen_gcm_case =
  let open QCheck2.Gen in
  let* nx = int_range 2 5 and* ny = int_range 2 5 in
  let* ix = int_range 0 nx and* iy = int_range 0 ny in
  let* rates = array_size (return 6) (float_range 0.3 3.0) in
  let* coupled = bool and* branching = bool in
  let* front = int_range 1 (nx + ny) in
  let* t = float_range 0.2 2.0 in
  return
    (random_gcm_src ~nx ~ny ~ix ~iy ~rates ~coupled ~branching ~front, t)

(* The windowed engine's contract on arbitrary programs: the certified
   radius never exceeds the requested epsilon, and the answer is within
   that radius of full-matrix uniformised reachability on the
   materialised twin (goal states made absorbing, tighter epsilon so the
   reference's own error is negligible). *)
let windowed_within_delta_on_random_gcm =
  QCheck2.Test.make ~count:30 ~name:"random .gcm: windowed within delta"
    gen_gcm_case (fun (src, t) ->
      let succ =
        match Lang.Gcm.of_string src with
        | Ok succ -> succ
        | Error msg ->
          QCheck2.Test.fail_reportf "generated program rejected: %s\n%s" msg
            src
      in
      let epsilon = 1e-9 in
      let r =
        solve_result
          (Explore.Windowed.solve ~epsilon
             ~classify:(classify_goal succ "goal")
             ~init:[ (succ.Explore.Succ.initial, 1.0) ]
             ~t ~reward_bound:None
             (Explore.Space.create succ))
      in
      if r.Explore.Windowed.delta > epsilon then
        QCheck2.Test.fail_reportf "delta %g exceeds epsilon %g"
          r.Explore.Windowed.delta epsilon;
      let mrm, labeling, init_id =
        match
          Explore.Materialise.materialise (Explore.Space.create succ)
        with
        | Ok twin -> twin
        | Error n -> QCheck2.Test.fail_reportf "materialise capped at %d" n
      in
      let chain = Markov.Mrm.ctmc mrm in
      let n = Markov.Ctmc.n_states chain in
      let goal = Markov.Labeling.sat labeling "goal" in
      let triples = ref [] in
      for s = 0 to n - 1 do
        if not goal.(s) then
          Linalg.Csr.iter_row (Markov.Ctmc.rates chain) s (fun j rate ->
              if rate > 0.0 then triples := (s, j, rate) :: !triples)
      done;
      let absorbed = Markov.Ctmc.of_transitions ~n !triples in
      let reference =
        Markov.Transient.reachability ~epsilon:1e-12 absorbed
          ~init:(Linalg.Vec.unit n init_id) ~goal ~t
      in
      let diff = Float.abs (r.Explore.Windowed.value -. reference) in
      if diff > r.Explore.Windowed.delta +. 1e-10 then
        QCheck2.Test.fail_reportf
          "windowed %.17g vs explicit %.17g: |diff| %g outside certified \
           delta %g\n%s"
          r.Explore.Windowed.value reference diff r.Explore.Windowed.delta src;
      true)

let suite =
  ( "explore",
    [ Alcotest.test_case "gcm compiles" `Quick test_gcm_compiles;
      Alcotest.test_case "gcm errors" `Quick test_gcm_errors;
      Alcotest.test_case "windowed vs explicit" `Quick test_windowed_vs_explicit;
      Alcotest.test_case "bit identity when untruncated" `Quick
        test_bit_identity_when_untruncated;
      Alcotest.test_case "warm space deterministic" `Quick
        test_warm_space_deterministic;
      Alcotest.test_case "materialise roundtrip" `Quick
        test_materialise_roundtrip;
      QCheck_alcotest.to_alcotest windowed_within_delta_on_random_gcm ] )
