(* Tests for expected-reward analysis and the R-operator extension. *)

let check_close ?(tol = 1e-9) what expected actual =
  let same =
    if Float.is_finite expected then
      Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual
    else expected = actual
  in
  if not same then
    Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let test_cumulative_constant () =
  (* A single absorbing state with reward c accumulates c * t exactly. *)
  let m = Markov.Mrm.of_transitions ~n:1 [] ~rewards:[| 2.5 |] in
  List.iter
    (fun t ->
      check_close ~tol:1e-10 (Printf.sprintf "t=%g" t) (2.5 *. t)
        (Markov.Expected_reward.cumulative m ~init:(Linalg.Vec.of_array [| 1.0 |]) ~t))
    [ 0.0; 0.5; 3.0; 50.0 ]

let test_cumulative_pure_death () =
  (* up (rho = 1) --mu--> down (rho = 0):
     E[Y_t] = int_0^t exp(-mu u) du = (1 - exp(-mu t)) / mu. *)
  let mu = 0.8 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu) ] ~rewards:[| 1.0; 0.0 |]
  in
  List.iter
    (fun t ->
      check_close ~tol:1e-10 (Printf.sprintf "t=%g" t)
        ((1.0 -. Float.exp (-.mu *. t)) /. mu)
        (Markov.Expected_reward.cumulative m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t))
    [ 0.1; 1.0; 10.0; 100.0 ]

let test_cumulative_repairable () =
  (* Two-state repairable with rewards (r0, r1): E[Y_t] has the closed
     form  pi_inf . rho * t + transient correction.  Cross-check against
     a fine numerical integration of pi(u) . rho instead. *)
  let mu = 2.0 and nu = 5.0 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu); (1, 0, nu) ]
      ~rewards:[| 3.0; 1.0 |]
  in
  let t = 2.0 in
  let steps = 20_000 in
  let dt = t /. float_of_int steps in
  let acc = ref 0.0 in
  for k = 0 to steps - 1 do
    let u = (float_of_int k +. 0.5) *. dt in
    let pi =
      Markov.Transient.distribution (Markov.Mrm.ctmc m) ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |])
        ~t:u
    in
    acc := !acc +. (dt *. ((3.0 *. pi.{0}) +. (1.0 *. pi.{1})))
  done;
  check_close ~tol:1e-6 "midpoint integration" !acc
    (Markov.Expected_reward.cumulative m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t)

let test_cumulative_all_consistency () =
  let m =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 1, 1.0); (1, 2, 0.5); (2, 0, 0.25) ]
      ~rewards:[| 1.0; 4.0; 0.5 |]
  in
  let t = 1.7 in
  let all = Markov.Expected_reward.cumulative_all m ~t in
  for s = 0 to 2 do
    check_close ~tol:1e-9 (Printf.sprintf "state %d" s)
      (Markov.Expected_reward.cumulative m ~init:(Linalg.Vec.unit 3 s) ~t)
      all.{s}
  done

let test_cumulative_monte_carlo () =
  let m = Models.Adhoc.mrm () in
  let t = 2.0 in
  let expected =
    Markov.Expected_reward.cumulative m
      ~init:(Linalg.Vec.unit 9 Models.Adhoc.initial_state) ~t
  in
  let rng = Sim.Rng.create ~seed:777L in
  let samples = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let tr =
      Sim.Trajectory.sample rng m ~init:Models.Adhoc.initial_state ~horizon:t
    in
    acc := !acc +. tr.Sim.Trajectory.final_reward
  done;
  let mc = !acc /. float_of_int samples in
  (* Standard error of the mean is small relative to the ~200 mAh scale. *)
  check_close ~tol:0.02 "MC mean energy" expected mc

let test_instantaneous () =
  let mu = 2.0 and nu = 5.0 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu); (1, 0, nu) ]
      ~rewards:[| 3.0; 1.0 |]
  in
  let t = 0.7 in
  let p_up =
    (nu /. (mu +. nu)) +. (mu /. (mu +. nu) *. Float.exp (-.(mu +. nu) *. t))
  in
  check_close ~tol:1e-10 "pi(t) . rho"
    ((3.0 *. p_up) +. (1.0 *. (1.0 -. p_up)))
    (Markov.Expected_reward.instantaneous m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t);
  (* At t = 0 it is the initial state's reward. *)
  check_close "t=0" 3.0
    (Markov.Expected_reward.instantaneous m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t:0.0)

let test_reachability_reward () =
  (* Birth chain 0 --l1--> 1 --l2--> 2(goal): expected accumulated reward
     is rho0/l1 + rho1/l2. *)
  let l1 = 2.0 and l2 = 0.5 in
  let m =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, l1); (1, 2, l2) ]
      ~rewards:[| 4.0; 3.0; 7.0 |]
  in
  let values =
    Markov.Expected_reward.reachability m ~goal:[| false; false; true |]
  in
  check_close ~tol:1e-9 "from 0" ((4.0 /. l1) +. (3.0 /. l2)) values.{0};
  check_close ~tol:1e-9 "from 1" (3.0 /. l2) values.{1};
  check_close "goal itself" 0.0 values.{2};
  (* A trap makes the expectation infinite. *)
  let m =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 1.0) ]
      ~rewards:[| 1.0; 1.0; 1.0 |]
  in
  let values =
    Markov.Expected_reward.reachability m ~goal:[| false; false; true |]
  in
  check_close "trapped" Float.infinity values.{0};
  check_close "trap itself" Float.infinity values.{1}

let test_steady_rate () =
  let mu = 2.0 and nu = 5.0 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu); (1, 0, nu) ]
      ~rewards:[| 3.0; 1.0 |]
  in
  let pi0 = nu /. (mu +. nu) in
  check_close ~tol:1e-8 "long-run rate"
    ((3.0 *. pi0) +. (1.0 *. (1.0 -. pi0)))
    (Markov.Expected_reward.steady_rate m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]));
  (* Reducible: the rate depends on the absorbing class reached. *)
  let m =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ]
      ~rewards:[| 0.0; 8.0; 4.0 |]
  in
  let all = Markov.Expected_reward.steady_rate_all m in
  check_close ~tol:1e-8 "mixture" ((0.25 *. 8.0) +. (0.75 *. 4.0)) all.{0};
  check_close ~tol:1e-9 "class a" 8.0 all.{1};
  check_close ~tol:1e-9 "class b" 4.0 all.{2}

(* ---- the R operator through parser and checker -------------------- *)

let server_ctx () =
  let mrm =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 1, 0.1); (1, 2, 0.1); (1, 0, 2.0); (2, 1, 1.0) ]
      ~rewards:[| 10.0; 6.0; 0.0 |]
  in
  let labeling =
    Markov.Labeling.make ~n:3 [ ("up", [ 0; 1 ]); ("down", [ 2 ]) ]
  in
  (mrm, Checker.make ~epsilon:1e-12 mrm labeling)

let test_r_operator_parsing () =
  let open Logic in
  (match Parser.state_formula "R<=120 ( C[t<=24] )" with
   | Ast.Reward (Ast.Le, 120.0, Ast.Cumulative 24.0) -> ()
   | f -> Alcotest.failf "bad parse: %s" (Ast.to_string f));
  (match Parser.state_formula "R>=5 ( F down )" with
   | Ast.Reward (Ast.Ge, 5.0, Ast.Reach (Ast.Ap "down")) -> ()
   | f -> Alcotest.failf "bad parse: %s" (Ast.to_string f));
  (match Parser.state_formula "R<9.5 ( S )" with
   | Ast.Reward (Ast.Lt, 9.5, Ast.Long_run) -> ()
   | f -> Alcotest.failf "bad parse: %s" (Ast.to_string f));
  (match Parser.query "R=? ( C[t<=2] )" with
   | Ast.Reward_query (Ast.Cumulative 2.0) -> ()
   | _ -> Alcotest.fail "bad R=? parse");
  (* Round trips. *)
  List.iter
    (fun text ->
      let f = Parser.state_formula text in
      if not (Ast.equal f (Parser.state_formula (Ast.to_string f))) then
        Alcotest.failf "round trip failed for %s" text)
    [ "R<=120 ( C[t<=24] )"; "R>=5 ( F (down | !up) )"; "R<9.5 ( S )" ];
  (* Errors. *)
  (match Parser.state_formula "R>=1 ( X a )" with
   | exception Parser.Parse_error _ -> ()
   | _ -> Alcotest.fail "accepted a path formula under R")

let test_r_operator_checking () =
  let mrm, ctx = server_ctx () in
  let values text =
    match Checker.eval_query ctx (Logic.Parser.query text) with
    | Checker.Numeric v -> v
    | _ -> Alcotest.fail "expected numeric"
  in
  (* Cumulative: matches the direct computation. *)
  let v = values "R=? ( C[t<=5] )" in
  check_close ~tol:1e-9 "cumulative from 0"
    (Markov.Expected_reward.cumulative mrm ~init:(Linalg.Vec.unit 3 0) ~t:5.0)
    v.{0};
  (* Reach: down is reached almost surely (single BSCC is the whole
     chain), so the value is finite and positive from up states. *)
  let v = values "R=? ( F down )" in
  Alcotest.(check bool) "finite" true (Float.is_finite v.{0} && v.{0} > 0.0);
  check_close "goal zero" 0.0 v.{2};
  (* Long-run rate equals the direct steady computation. *)
  let v = values "R=? ( S )" in
  check_close ~tol:1e-8 "long run"
    (Markov.Expected_reward.steady_rate mrm ~init:(Linalg.Vec.unit 3 0))
    v.{0};
  (* Verdict form: the max possible is rho_max * t = 100, and a fresh
     'down' start accumulates strictly less than a 'full' start. *)
  let cumulative = values "R=? ( C[t<=10] )" in
  Alcotest.(check bool) "down start accumulates less" true
    (cumulative.{2} < cumulative.{0});
  let mask =
    Checker.sat ctx (Logic.Parser.state_formula "R<=100 ( C[t<=10] )")
  in
  Alcotest.(check (list bool)) "bounded verdict" [ true; true; true ]
    (Array.to_list mask);
  let mask =
    Checker.sat ctx (Logic.Parser.state_formula "R>100 ( C[t<=10] )")
  in
  Alcotest.(check (list bool)) "negated verdict" [ false; false; false ]
    (Array.to_list mask)

let test_r_operator_case_study () =
  (* Expected energy drawn by the mobile station over 24 h — finite,
     positive, and below the theoretical max of 350 * 24. *)
  let ctx =
    Checker.make ~epsilon:1e-10 (Models.Adhoc.mrm ()) (Models.Adhoc.labeling ())
  in
  match Checker.eval_query ctx (Logic.Parser.query "R=? ( C[t<=24] )") with
  | Checker.Numeric v ->
    let e = v.{Models.Adhoc.initial_state} in
    Alcotest.(check bool) "energy plausible" true (e > 20.0 *. 24.0 && e < 350.0 *. 24.0);
    (* Long-run power draw of the station. *)
    (match Checker.eval_query ctx (Logic.Parser.query "R=? ( S )") with
     | Checker.Numeric rate ->
       let r = rate.{Models.Adhoc.initial_state} in
       Alcotest.(check bool) "rate plausible" true (r > 20.0 && r < 350.0);
       (* For an irreducible chain, E[Y_t] / t approaches the rate. *)
       let t = 2000.0 in
       let e_long =
         Markov.Expected_reward.cumulative (Models.Adhoc.mrm ())
           ~init:(Linalg.Vec.unit 9 Models.Adhoc.initial_state) ~t
       in
       check_close ~tol:1e-3 "ergodic limit" r (e_long /. t)
     | _ -> Alcotest.fail "expected numeric")
  | _ -> Alcotest.fail "expected numeric"

let suite =
  ( "expected reward",
    [ Alcotest.test_case "cumulative constant" `Quick test_cumulative_constant;
      Alcotest.test_case "cumulative pure death" `Quick
        test_cumulative_pure_death;
      Alcotest.test_case "cumulative repairable" `Quick
        test_cumulative_repairable;
      Alcotest.test_case "cumulative_all" `Quick test_cumulative_all_consistency;
      Alcotest.test_case "cumulative vs Monte-Carlo" `Quick
        test_cumulative_monte_carlo;
      Alcotest.test_case "instantaneous" `Quick test_instantaneous;
      Alcotest.test_case "reachability reward" `Quick test_reachability_reward;
      Alcotest.test_case "steady rate" `Quick test_steady_rate;
      Alcotest.test_case "R operator parsing" `Quick test_r_operator_parsing;
      Alcotest.test_case "R operator checking" `Quick test_r_operator_checking;
      Alcotest.test_case "R operator case study" `Quick
        test_r_operator_case_study ] )
