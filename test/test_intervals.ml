(* Tests for the general-interval extension: time windows [a, b] on until
   and general intervals on next (the paper's Section 6 future work,
   implemented here by the standard two-phase construction). *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let probs ctx text =
  match Checker.eval_query ctx (Logic.Parser.query text) with
  | Checker.Numeric v -> v
  | _ -> Alcotest.fail "expected a numeric query"

(* Pure death up --mu--> down.  With phi = true, F[a<=t<=b] down is
   satisfied iff T <= b (down is absorbing, so an early hit still holds
   at time a); with phi = up it needs a <= T <= b exactly. *)
let test_window_closed_forms () =
  let mu = 0.9 in
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu) ] ~rewards:[| 1.0; 0.0 |]
  in
  let labeling =
    Markov.Labeling.make ~n:2 [ ("up", [ 0 ]); ("down", [ 1 ]) ]
  in
  let ctx = Checker.make ~epsilon:1e-13 mrm labeling in
  let a = 1.0 and b = 3.0 in
  let v = probs ctx "P=? ( F[t>=1][t<=3] down )" in
  check_close ~tol:1e-10 "true-until window" (1.0 -. Float.exp (-.mu *. b))
    v.{0};
  let v = probs ctx "P=? ( up U[t>=1][t<=3] down )" in
  check_close ~tol:1e-10 "phi-until window"
    (Float.exp (-.mu *. a) -. Float.exp (-.mu *. b))
    v.{0};
  (* From a down start the formula holds iff down itself is in the set at
     some point of [a, b] with phi before — phi = up fails immediately
     unless the start is psi at time a... it is psi the whole time, but
     states before a are 'down', violating up: probability 0 from down
     with a > 0?  No: from 'down', X_u = down for all u; the requirement
     is exists u in [a,b] with psi and all earlier states phi — earlier
     states are 'down', not 'up', so it fails. *)
  check_close ~tol:1e-10 "down start fails the phi window" 0.0 v.{1};
  (* ... but with phi = true it holds. *)
  let v = probs ctx "P=? ( F[t>=1][t<=3] down )" in
  check_close "down start, true window" 1.0 v.{1};
  (* Half-open [a, inf): with phi = up it is just P(T >= a). *)
  let v = probs ctx "P=? ( up U[t>=1] down )" in
  check_close ~tol:1e-10 "half-open window" (Float.exp (-.mu *. a)) v.{0}

(* Erlang-2 chain 0 -> 1 -> 2 with both rates lam, phi = {0,1}: the hit
   time is Erlang(2, lam), and the window probability is
   F(b) - F(a) with F the Erlang cdf. *)
let test_window_erlang () =
  let lam = 1.3 in
  let mrm =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, lam); (1, 2, lam) ]
      ~rewards:[| 1.0; 1.0; 0.0 |]
  in
  let labeling =
    Markov.Labeling.make ~n:3 [ ("run", [ 0; 1 ]); ("done", [ 2 ]) ]
  in
  let ctx = Checker.make ~epsilon:1e-13 mrm labeling in
  let erlang_cdf t = 1.0 -. (Float.exp (-.lam *. t) *. (1.0 +. (lam *. t))) in
  let v = probs ctx "P=? ( run U[t>=0.5][t<=2.5] done )" in
  check_close ~tol:1e-10 "erlang window"
    (erlang_cdf 2.5 -. erlang_cdf 0.5)
    v.{0}

(* Next with general intervals: from state 0 of the pure-death chain the
   jump time is exponential, so
   P(X[a<=t<=b] down) = exp(-mu a) - exp(-mu b), and the reward interval
   scales by the local rate. *)
let test_next_intervals () =
  let mu = 2.0 in
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu) ] ~rewards:[| 4.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:2 [ ("down", [ 1 ]) ] in
  let ctx = Checker.make mrm labeling in
  let v = probs ctx "P=? ( X[t>=0.25][t<=1] down )" in
  check_close ~tol:1e-12 "time window next"
    (Float.exp (-.mu *. 0.25) -. Float.exp (-.mu))
    v.{0};
  (* Reward in [2, 6] at rate 4: sojourn in [0.5, 1.5]. *)
  let v = probs ctx "P=? ( X[r>=2][r<=6] down )" in
  check_close ~tol:1e-12 "reward window next"
    (Float.exp (-.mu *. 0.5) -. Float.exp (-.mu *. 1.5))
    v.{0};
  (* Intersection of both: time [0.25, 1] and sojourn-from-reward
     [0.5, 1.5] -> [0.5, 1]. *)
  let v = probs ctx "P=? ( X[t>=0.25][t<=1][r>=2][r<=6] down )" in
  check_close ~tol:1e-12 "joint window next"
    (Float.exp (-.mu *. 0.5) -. Float.exp (-.mu))
    v.{0};
  (* Empty intersection. *)
  let v = probs ctx "P=? ( X[t<=0.25][r>=2] down )" in
  check_close "empty window" 0.0 v.{0};
  (* Zero reward rate satisfies only reward intervals containing 0. *)
  let mrm0 =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, mu) ] ~rewards:[| 0.0; 0.0 |]
  in
  let ctx0 = Checker.make mrm0 labeling in
  let v = probs ctx0 "P=? ( X[r<=6] down )" in
  check_close "zero rate, downward reward" 1.0 v.{0};
  let v = probs ctx0 "P=? ( X[r>=2] down )" in
  check_close "zero rate, lower-bounded reward" 0.0 v.{0}

let test_unsupported_combinations () =
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 1.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:2 [ ("down", [ 1 ]) ] in
  let ctx = Checker.make mrm labeling in
  let expect_unsupported text =
    match probs ctx text with
    | exception Checker.Unsupported _ -> ()
    | _ -> Alcotest.failf "expected Unsupported for %s" text
  in
  (* The paper's open problem: reward lower bounds on until, and time
     lower bounds combined with reward bounds. *)
  expect_unsupported "P=? ( F[r>=1] down )";
  expect_unsupported "P=? ( F[t>=1][t<=2][r<=1] down )"

let test_window_consistency () =
  (* [0, b] window must agree with the plain time-bounded code path, and
     splitting [0, b] = [0, a] + (a, b]-window must be consistent:
     P(F[<=b]) >= P(F[a<=t<=b]). *)
  let ctx =
    Checker.make ~epsilon:1e-12 (Models.Adhoc.mrm ()) (Models.Adhoc.labeling ())
  in
  let plain = probs ctx "P=? ( F[t<=24] call_incoming )" in
  let window = probs ctx "P=? ( F[t>=0][t<=24] call_incoming )" in
  Array.iteri
    (fun s v -> check_close ~tol:1e-12 (Printf.sprintf "state %d" s) v window.{s})
    (Linalg.Vec.to_array plain);
  let late = probs ctx "P=? ( F[t>=12][t<=24] call_incoming )" in
  Array.iteri
    (fun s v ->
      if late.{s} > v +. 1e-9 then
        Alcotest.failf "window exceeds superset at %d" s)
    (Linalg.Vec.to_array plain)

(* The Monte-Carlo oracle: two-phase checking vs direct simulation of the
   window semantics on random models. *)
let prop_window_vs_simulation =
  QCheck2.Test.make ~count:12 ~name:"window until matches simulation"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let m =
        Models.Random_mrm.generate ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let n = Markov.Mrm.n_states m in
      let rng = Sim.Rng.create ~seed:(Int64.of_int (seed * 7 + 1)) in
      let phi = Array.init n (fun _ -> Sim.Rng.float rng < 0.75) in
      let psi = Array.init n (fun _ -> Sim.Rng.float rng < 0.3) in
      if not (Array.exists Fun.id psi) then psi.(0) <- true;
      let a = 0.25 +. Sim.Rng.float rng in
      let b = a +. 0.25 +. Sim.Rng.float rng in
      let labeling =
        Markov.Labeling.make ~n
          [ ("phi", List.filter (fun s -> phi.(s)) (List.init n Fun.id));
            ("psi", List.filter (fun s -> psi.(s)) (List.init n Fun.id)) ]
      in
      let ctx = Checker.make ~epsilon:1e-12 m labeling in
      let text = Printf.sprintf "P=? ( phi U[t>=%g][t<=%g] psi )" a b in
      let values = probs ctx text in
      let init = Sim.Rng.int rng ~bound:n in
      let iv =
        Sim.Estimate.until_probability_window ~confidence:0.999 rng m ~init
          ~phi ~psi
          ~time:(Numerics.Time_interval.between a b)
          ~reward:Numerics.Time_interval.unbounded ~samples:20_000
      in
      let ok =
        Sim.Estimate.contains iv values.{init}
        || Float.abs (values.{init} -. iv.Sim.Estimate.mean) <= 5e-4
      in
      if not ok then
        QCheck2.Test.fail_reportf
          "checker %.6f outside MC %.6f +- %.6f (seed %d, window [%g,%g])"
          values.{init} iv.Sim.Estimate.mean iv.Sim.Estimate.half_width seed a
          b
      else true)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "interval extension",
    [ Alcotest.test_case "window closed forms" `Quick test_window_closed_forms;
      Alcotest.test_case "window erlang" `Quick test_window_erlang;
      Alcotest.test_case "next with general intervals" `Quick
        test_next_intervals;
      Alcotest.test_case "unsupported combinations" `Quick
        test_unsupported_combinations;
      Alcotest.test_case "window consistency" `Quick test_window_consistency;
      q prop_window_vs_simulation ] )
