(* Unit and property tests for the numerics substrate. *)

let approx = Numerics.Float_utils.approx_eq

let check_close ?(tol = 1e-12) what expected actual =
  let same =
    if Float.is_finite expected then approx ~rel:tol ~abs:tol expected actual
    else expected = actual
  in
  if not same then
    Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

(* ------------------------------------------------------------------ *)

let test_float_utils () =
  Alcotest.(check bool) "approx_eq equal" true (approx 1.0 1.0);
  Alcotest.(check bool) "approx_eq differs" false (approx 1.0 1.1);
  Alcotest.(check bool) "approx_eq tiny" true (approx 0.0 1e-13);
  Alcotest.(check (float 0.0)) "clamp low" 0.0
    (Numerics.Float_utils.clamp ~lo:0.0 ~hi:1.0 (-0.5));
  Alcotest.(check (float 0.0)) "clamp high" 1.0
    (Numerics.Float_utils.clamp ~lo:0.0 ~hi:1.0 1.5);
  Alcotest.(check (float 0.0)) "clamp_prob overshoot" 1.0
    (Numerics.Float_utils.clamp_prob 1.0000001);
  Alcotest.(check bool) "is_prob" true (Numerics.Float_utils.is_prob 0.5);
  Alcotest.(check bool) "is_prob nan" false (Numerics.Float_utils.is_prob Float.nan);
  check_close "relative_error" 0.1
    (Numerics.Float_utils.relative_error ~reference:10.0 11.0);
  check_close "relative_error zero ref" 0.25
    (Numerics.Float_utils.relative_error ~reference:0.0 0.25);
  check_close "sum_abs_diff" 3.0
    (Numerics.Float_utils.sum_abs_diff [| 1.0; 2.0 |] [| 2.0; 4.0 |]);
  check_close "max_abs_diff" 2.0
    (Numerics.Float_utils.max_abs_diff [| 1.0; 2.0 |] [| 2.0; 4.0 |])

let test_kahan () =
  (* Sum many tiny values onto a large one: naive summation loses them. *)
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1e16;
  for _ = 1 to 10_000 do
    Numerics.Kahan.add acc 1.0
  done;
  check_close "kahan large+small" (1e16 +. 10_000.0) (Numerics.Kahan.sum acc);
  check_close "sum_array" 6.0 (Numerics.Kahan.sum_array [| 1.0; 2.0; 3.0 |]);
  check_close "dot" 32.0 (Numerics.Kahan.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  Alcotest.check_raises "dot length mismatch"
    (Invalid_argument "Kahan.dot: length mismatch") (fun () ->
      ignore (Numerics.Kahan.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_log_gamma () =
  check_close ~tol:1e-11 "Gamma(1)" 0.0 (Numerics.Special.log_gamma 1.0);
  check_close ~tol:1e-11 "Gamma(2)" 0.0 (Numerics.Special.log_gamma 2.0);
  check_close ~tol:1e-11 "Gamma(5) = 24" (Float.log 24.0)
    (Numerics.Special.log_gamma 5.0);
  check_close ~tol:1e-11 "Gamma(0.5) = sqrt(pi)"
    (0.5 *. Float.log Float.pi)
    (Numerics.Special.log_gamma 0.5);
  (* Reflection-branch value: Gamma(0.25) = 3.625609908... *)
  check_close ~tol:1e-10 "Gamma(0.25)" (Float.log 3.6256099082219083)
    (Numerics.Special.log_gamma 0.25);
  check_close ~tol:1e-10 "Gamma(171) large" (Numerics.Special.log_factorial 170)
    (Numerics.Special.log_gamma 171.0);
  Alcotest.check_raises "log_gamma of 0"
    (Invalid_argument "Special.log_gamma: requires x > 0") (fun () ->
      ignore (Numerics.Special.log_gamma 0.0))

let test_factorial_binomial () =
  check_close "0!" 0.0 (Numerics.Special.log_factorial 0);
  check_close "5!" (Float.log 120.0) (Numerics.Special.log_factorial 5);
  check_close ~tol:1e-10 "200!"
    (Numerics.Special.log_gamma 201.0)
    (Numerics.Special.log_factorial 200);
  check_close "C(5,2)" 10.0 (Numerics.Special.binomial 5 2);
  check_close "C(10,0)" 1.0 (Numerics.Special.binomial 10 0);
  check_close "C(10,10)" 1.0 (Numerics.Special.binomial 10 10);
  check_close ~tol:1e-10 "C(50,25)" 1.2641060643775221e14
    (Numerics.Special.binomial 50 25);
  Alcotest.check_raises "C(3,5) invalid"
    (Invalid_argument "Special.log_binomial: need 0 <= k <= n") (fun () ->
      ignore (Numerics.Special.binomial 3 5))

let test_log_sum_exp () =
  check_close "lse empty" Float.neg_infinity (Numerics.Special.log_sum_exp [||]);
  check_close ~tol:1e-12 "lse basics" (Float.log 3.0)
    (Numerics.Special.log_sum_exp [| 0.0; 0.0; 0.0 |]);
  (* Stability: values that would overflow exp directly. *)
  check_close ~tol:1e-12 "lse large" (1000.0 +. Float.log 2.0)
    (Numerics.Special.log_sum_exp [| 1000.0; 1000.0 |])

let test_poisson_pmf () =
  check_close "pmf(0;0)" 1.0 (Numerics.Poisson.pmf ~lambda:0.0 0);
  check_close "pmf(3;0)" 0.0 (Numerics.Poisson.pmf ~lambda:0.0 3);
  check_close ~tol:1e-12 "pmf(0;2)" (Float.exp (-2.0))
    (Numerics.Poisson.pmf ~lambda:2.0 0);
  check_close ~tol:1e-12 "pmf(2;2)" (2.0 *. Float.exp (-2.0))
    (Numerics.Poisson.pmf ~lambda:2.0 2);
  (* Mass sums to one over a wide window, even for large lambda. *)
  let lambda = 468.0 in
  let acc = Numerics.Kahan.create () in
  for n = 0 to 1200 do
    Numerics.Kahan.add acc (Numerics.Poisson.pmf ~lambda n)
  done;
  check_close ~tol:1e-10 "pmf mass at lambda=468" 1.0 (Numerics.Kahan.sum acc)

let test_poisson_cdf () =
  check_close ~tol:1e-12 "cdf(1;2)" (3.0 *. Float.exp (-2.0))
    (Numerics.Poisson.cdf ~lambda:2.0 1);
  (* Monotone in n. *)
  let prev = ref (-1.0) in
  for n = 0 to 30 do
    let c = Numerics.Poisson.cdf ~lambda:10.0 n in
    if c < !prev then Alcotest.failf "cdf not monotone at %d" n;
    prev := c
  done;
  check_close ~tol:1e-9 "cdf far right" 1.0 (Numerics.Poisson.cdf ~lambda:10.0 100)

(* The strongest oracle in the whole suite: the N_epsilon column of the
   paper's Table 2 for lambda * t = 19.5 * 24 = 468 — our truncation rule
   must reproduce all eight entries exactly. *)
let test_truncation_matches_paper () =
  let expected = [ 496; 519; 536; 551; 563; 574; 585; 594 ] in
  let epsilons = [ 1e-1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8 ] in
  List.iter2
    (fun eps n ->
      Alcotest.(check int)
        (Printf.sprintf "N for eps=%g" eps)
        n
        (Numerics.Poisson.right_truncation_point ~lambda:468.0 ~epsilon:eps))
    epsilons expected

let test_truncation_edges () =
  Alcotest.(check int) "lambda 0" 0
    (Numerics.Poisson.right_truncation_point ~lambda:0.0 ~epsilon:1e-6);
  (* Tiny lambda: nearly all mass at 0. *)
  Alcotest.(check int) "tiny lambda coarse eps" 0
    (Numerics.Poisson.right_truncation_point ~lambda:1e-6 ~epsilon:1e-2);
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Poisson.right_truncation_point: epsilon outside (0,1)")
    (fun () ->
      ignore (Numerics.Poisson.right_truncation_point ~lambda:1.0 ~epsilon:2.0))

let test_fox_glynn_basic () =
  let fg = Numerics.Fox_glynn.compute ~q:0.0 ~epsilon:1e-10 in
  Alcotest.(check int) "q=0 left" 0 fg.Numerics.Fox_glynn.left;
  Alcotest.(check int) "q=0 right" 0 fg.Numerics.Fox_glynn.right;
  check_close "q=0 total" 1.0 fg.Numerics.Fox_glynn.total;
  let fg = Numerics.Fox_glynn.compute ~q:10.0 ~epsilon:1e-12 in
  if fg.Numerics.Fox_glynn.total < 1.0 -. 1e-12 then
    Alcotest.failf "mass %g below 1 - eps" fg.Numerics.Fox_glynn.total;
  (* Window weights are the true pmf. *)
  for n = fg.Numerics.Fox_glynn.left to fg.Numerics.Fox_glynn.right do
    check_close ~tol:1e-10
      (Printf.sprintf "weight %d" n)
      (Numerics.Poisson.pmf ~lambda:10.0 n)
      (Numerics.Fox_glynn.weight fg n)
  done;
  check_close "outside window" 0.0
    (Numerics.Fox_glynn.weight fg (fg.Numerics.Fox_glynn.right + 5))

let test_fox_glynn_large () =
  (* The pseudo-Erlang expansion reaches q ~ 8700; exp(-q) underflows but
     the window must still carry the mass. *)
  let fg = Numerics.Fox_glynn.compute ~q:8700.0 ~epsilon:1e-10 in
  if fg.Numerics.Fox_glynn.total < 1.0 -. 1e-10 then
    Alcotest.failf "large-q mass %.17g too small" fg.Numerics.Fox_glynn.total;
  if fg.Numerics.Fox_glynn.total > 1.0 +. 1e-9 then
    Alcotest.failf "large-q mass %.17g exceeds one" fg.Numerics.Fox_glynn.total;
  (* Window should be centred near the mode. *)
  if fg.Numerics.Fox_glynn.left > 8700 || fg.Numerics.Fox_glynn.right < 8700
  then Alcotest.fail "window misses the mode"

let test_fox_glynn_edges () =
  (* Tiny rates: the mode is 0, so the window collapses to the first few
     integers and almost all the mass sits on n = 0. *)
  List.iter
    (fun q ->
      let fg = Numerics.Fox_glynn.compute ~q ~epsilon:1e-10 in
      Alcotest.(check int)
        (Printf.sprintf "tiny q=%g left" q)
        0 fg.Numerics.Fox_glynn.left;
      if fg.Numerics.Fox_glynn.right > 2 then
        Alcotest.failf "tiny q=%g right %d too wide" q
          fg.Numerics.Fox_glynn.right;
      check_close ~tol:1e-7
        (Printf.sprintf "tiny q=%g weight at 0" q)
        1.0
        (Numerics.Fox_glynn.weight fg 0))
    [ 1e-12; 1e-8 ];
  (* Around q ~ 745.13, exp(-q) underflows to zero: a naive recursion
     anchored at e^-q would produce an all-zero window.  The window is
     anchored at the mode's log-space pmf instead, so the weights stay
     finite and normalised straight through the boundary (and out to the
     pseudo-Erlang extreme).  The truncation points must also satisfy the
     a-posteriori Poisson tail bounds they were derived from. *)
  List.iter
    (fun q ->
      let epsilon = 1e-10 in
      let fg = Numerics.Fox_glynn.compute ~q ~epsilon in
      Array.iter
        (fun w ->
          if not (Float.is_finite w) || w < 0.0 then
            Alcotest.failf "q=%g: weight %g not finite/non-negative" q w)
        fg.Numerics.Fox_glynn.weights;
      if fg.Numerics.Fox_glynn.total < 1.0 -. epsilon then
        Alcotest.failf "q=%g: mass %.17g below 1 - eps" q
          fg.Numerics.Fox_glynn.total;
      if fg.Numerics.Fox_glynn.total > 1.0 +. 1e-9 then
        Alcotest.failf "q=%g: mass %.17g exceeds one" q
          fg.Numerics.Fox_glynn.total;
      let left = fg.Numerics.Fox_glynn.left
      and right = fg.Numerics.Fox_glynn.right in
      if left > 0 then begin
        let below = Numerics.Poisson.cdf ~lambda:q (left - 1) in
        if below > epsilon then
          Alcotest.failf "q=%g: left tail %.3g exceeds eps %g" q below epsilon
      end;
      let beyond = 1.0 -. Numerics.Poisson.cdf ~lambda:q right in
      if beyond > epsilon then
        Alcotest.failf "q=%g: right tail %.3g exceeds eps %g" q beyond epsilon)
    [ 700.0; 745.0; 746.0; 800.0; 8700.0 ]

let test_fox_glynn_fold () =
  let fg = Numerics.Fox_glynn.compute ~q:5.0 ~epsilon:1e-10 in
  let total = Numerics.Fox_glynn.fold fg ~init:0.0 ~f:(fun acc _ w -> acc +. w) in
  check_close ~tol:1e-12 "fold total" fg.Numerics.Fox_glynn.total total;
  let count = Numerics.Fox_glynn.fold fg ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "fold count"
    (fg.Numerics.Fox_glynn.right - fg.Numerics.Fox_glynn.left + 1)
    count

let test_interval () =
  let open Numerics.Time_interval in
  Alcotest.(check bool) "mem in" true (mem 3.0 (upto 5.0));
  Alcotest.(check bool) "mem boundary" true (mem 5.0 (upto 5.0));
  Alcotest.(check bool) "mem out" false (mem 5.1 (upto 5.0));
  Alcotest.(check bool) "mem negative" false (mem (-1.0) unbounded);
  Alcotest.(check bool) "unbounded mem" true (mem 1e30 unbounded);
  Alcotest.(check bool) "is_bounded" true (is_bounded (upto 1.0));
  Alcotest.(check (option (float 0.0))) "bound" (Some 2.0) (bound (upto 2.0));
  Alcotest.(check (option (float 0.0))) "bound unbounded" None (bound unbounded);
  Alcotest.(check bool) "equal" true (equal (upto 2.0) (upto 2.0));
  Alcotest.(check bool) "not equal" false (equal (upto 2.0) unbounded);
  Alcotest.(check bool) "min_bound" true
    (equal (min_bound (upto 2.0) (upto 3.0)) (upto 2.0));
  Alcotest.(check bool) "scale" true (equal (scale 2.0 (upto 3.0)) (upto 6.0));
  Alcotest.check_raises "upto negative"
    (Invalid_argument
       "Time_interval.upto: endpoints must be finite and non-negative")
    (fun () -> ignore (upto (-1.0)));
  (* General intervals. *)
  Alcotest.(check bool) "between mem" true (mem 2.0 (between 1.0 3.0));
  Alcotest.(check bool) "between below" false (mem 0.5 (between 1.0 3.0));
  Alcotest.(check bool) "from mem" true (mem 10.0 (from 2.0));
  Alcotest.(check bool) "from below" false (mem 1.0 (from 2.0));
  Alcotest.(check bool) "between normalises" true
    (equal (between 0.0 3.0) (upto 3.0));
  Alcotest.(check bool) "from normalises" true (equal (from 0.0) unbounded);
  check_close "lower" 1.0 (lower (between 1.0 3.0));
  Alcotest.(check (option (float 0.0))) "upper" (Some 3.0)
    (upper (between 1.0 3.0));
  Alcotest.(check bool) "downward closed" false
    (is_downward_closed (from 1.0));
  Alcotest.(check bool) "scale between" true
    (equal (scale 2.0 (between 1.0 3.0)) (between 2.0 6.0));
  (* Intersections. *)
  let same a b =
    match a, b with
    | Some x, Some y -> equal x y
    | None, None -> true
    | Some _, None | None, Some _ -> false
  in
  Alcotest.(check bool) "intersect overlap" true
    (same (intersect (between 1.0 4.0) (upto 2.0)) (Some (between 1.0 2.0)));
  Alcotest.(check bool) "intersect empty" true
    (same (intersect (upto 1.0) (from 2.0)) None);
  Alcotest.(check bool) "intersect unbounded" true
    (same (intersect unbounded (from 2.0)) (Some (from 2.0)));
  Alcotest.check_raises "between reversed"
    (Invalid_argument "Time_interval.between: lower exceeds upper") (fun () ->
      ignore (between 3.0 1.0))

(* ---------------- property tests ---------------------------------- *)

let prop_fox_glynn_mass =
  QCheck2.Test.make ~count:60 ~name:"fox-glynn window mass >= 1 - eps"
    QCheck2.Gen.(pair (float_range 0.01 2000.0) (float_range 1e-12 1e-2))
    (fun (q, epsilon) ->
      let fg = Numerics.Fox_glynn.compute ~q ~epsilon in
      fg.Numerics.Fox_glynn.total >= 1.0 -. epsilon
      && fg.Numerics.Fox_glynn.total <= 1.0 +. 1e-9)

let prop_truncation_covers =
  QCheck2.Test.make ~count:60 ~name:"right truncation reaches 1 - eps"
    QCheck2.Gen.(pair (float_range 0.01 1000.0) (float_range 1e-10 0.5))
    (fun (lambda, epsilon) ->
      let n = Numerics.Poisson.right_truncation_point ~lambda ~epsilon in
      Numerics.Poisson.cdf ~lambda n >= 1.0 -. epsilon -. 1e-12)

let prop_binomial_symmetry =
  QCheck2.Test.make ~count:100 ~name:"binomial symmetry"
    QCheck2.Gen.(pair (int_range 0 60) (int_range 0 60))
    (fun (n, k) ->
      QCheck2.assume (k <= n);
      approx ~rel:1e-10
        (Numerics.Special.binomial n k)
        (Numerics.Special.binomial n (n - k)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "numerics",
    [ Alcotest.test_case "float_utils" `Quick test_float_utils;
      Alcotest.test_case "kahan" `Quick test_kahan;
      Alcotest.test_case "log_gamma" `Quick test_log_gamma;
      Alcotest.test_case "factorial/binomial" `Quick test_factorial_binomial;
      Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
      Alcotest.test_case "poisson pmf" `Quick test_poisson_pmf;
      Alcotest.test_case "poisson cdf" `Quick test_poisson_cdf;
      Alcotest.test_case "paper Table 2 N column" `Quick
        test_truncation_matches_paper;
      Alcotest.test_case "truncation edge cases" `Quick test_truncation_edges;
      Alcotest.test_case "fox-glynn basics" `Quick test_fox_glynn_basic;
      Alcotest.test_case "fox-glynn large q" `Quick test_fox_glynn_large;
      Alcotest.test_case "fox-glynn edge cases" `Quick test_fox_glynn_edges;
      Alcotest.test_case "fox-glynn fold" `Quick test_fox_glynn_fold;
      Alcotest.test_case "intervals" `Quick test_interval;
      q prop_fox_glynn_mass;
      q prop_truncation_covers;
      q prop_binomial_symmetry ] )
