(* Tests for the CSRL model checker against closed forms. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

(* The quickstart server: 0 = both up (reward 10), 1 = one up (reward 6),
   2 = down (reward 0). *)
let server () =
  let mrm =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 1, 0.1); (1, 2, 0.1); (1, 0, 2.0); (2, 1, 1.0) ]
      ~rewards:[| 10.0; 6.0; 0.0 |]
  in
  let labeling =
    Markov.Labeling.make ~n:3
      [ ("full", [ 0 ]); ("degraded", [ 1 ]); ("down", [ 2 ]);
        ("up", [ 0; 1 ]) ]
  in
  Checker.make ~epsilon:1e-12 mrm labeling

let probs ctx text =
  match Checker.eval_query ctx (Logic.Parser.query text) with
  | Checker.Numeric v -> v
  | _ -> Alcotest.fail "expected a numeric query"

let test_boolean_layer () =
  let ctx = server () in
  let sat text = Array.to_list (Checker.sat ctx (Logic.Parser.state_formula text)) in
  Alcotest.(check (list bool)) "ap" [ false; true; false ] (sat "degraded");
  Alcotest.(check (list bool)) "not" [ true; false; true ] (sat "!degraded");
  Alcotest.(check (list bool)) "and" [ false; true; false ] (sat "up & degraded");
  Alcotest.(check (list bool)) "or" [ true; true; false ] (sat "full | degraded");
  Alcotest.(check (list bool)) "implies" [ true; true; false ] (sat "down -> full" |> fun l -> l);
  Alcotest.(check (list bool)) "true" [ true; true; true ] (sat "true");
  Alcotest.(check (list bool)) "false" [ false; false; false ] (sat "false");
  Alcotest.(check bool) "holds" true
    (Checker.holds ctx (Logic.Parser.state_formula "up") 0)

(* Next: from state 1 the jump distribution is repair 2/2.1, fail 0.1/2.1;
   time and reward bounds scale by 1 - exp(-E min(t, r/rho)). *)
let test_next () =
  let ctx = server () in
  let v = probs ctx "P=? ( X full )" in
  check_close "unbounded next" (2.0 /. 2.1) v.{1};
  check_close "absorbing-free state 0" 0.0 v.{0};
  let v = probs ctx "P=? ( X[t<=0.5] full )" in
  check_close "time-bounded next"
    ((2.0 /. 2.1) *. (1.0 -. Float.exp (-2.1 *. 0.5)))
    v.{1};
  let v = probs ctx "P=? ( X[r<=2] full )" in
  (* reward cap: sojourn <= 2 / 6. *)
  check_close "reward-bounded next"
    ((2.0 /. 2.1) *. (1.0 -. Float.exp (-2.1 *. (2.0 /. 6.0))))
    v.{1};
  let v = probs ctx "P=? ( X[t<=0.5][r<=2] full )" in
  check_close "both bounds (reward tighter)"
    ((2.0 /. 2.1) *. (1.0 -. Float.exp (-2.1 *. (2.0 /. 6.0))))
    v.{1}

(* Unbounded until on a pure race: 0 -> a (rate 1), 0 -> b (rate 3). *)
let test_until_unbounded () =
  let mrm =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ]
      ~rewards:[| 1.0; 0.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:3 [ ("a", [ 1 ]); ("b", [ 2 ]) ] in
  let ctx = Checker.make mrm labeling in
  let v = probs ctx "P=? ( !b U a )" in
  check_close ~tol:1e-10 "race" 0.25 v.{0};
  check_close "goal state itself" 1.0 v.{1};
  check_close "excluded state" 0.0 v.{2};
  (* Through the server: from 'down' the chain revives, so F up = 1. *)
  let ctx = server () in
  let v = probs ctx "P=? ( F up )" in
  check_close "revival" 1.0 v.{2}

(* Time-bounded until, pure death chain: P(F[t] down) from state 1 of
   1 --0.1--> 2 with repair disabled by the phi constraint... use a simple
   2-state chain instead for the closed form. *)
let test_until_time_bounded () =
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 0.7) ] ~rewards:[| 1.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:2 [ ("down", [ 1 ]) ] in
  let ctx = Checker.make ~epsilon:1e-13 mrm labeling in
  let v = probs ctx "P=? ( F[t<=2] down )" in
  check_close ~tol:1e-11 "exp cdf" (1.0 -. Float.exp (-1.4)) v.{0};
  check_close "goal is immediate" 1.0 v.{1};
  (* The phi constraint matters: a -> b -> c, P(a U[t] c) = 0 because the
     path must leave a through b which violates phi... *)
  let mrm =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 1.0) ]
      ~rewards:[| 0.0; 0.0; 0.0 |]
  in
  let labeling =
    Markov.Labeling.make ~n:3 [ ("a", [ 0 ]); ("b", [ 1 ]); ("c", [ 2 ]) ]
  in
  let ctx = Checker.make mrm labeling in
  let v = probs ctx "P=? ( a U[t<=5] c )" in
  check_close "blocked" 0.0 v.{0};
  let v = probs ctx "P=? ( (a | b) U[t<=5] c )" in
  (* Erlang-2 cdf: 1 - e^-t (1 + t). *)
  check_close ~tol:1e-10 "erlang-2 cdf"
    (1.0 -. (Float.exp (-5.0) *. 6.0))
    v.{0}

(* Reward-bounded until via duality: on the 2-state chain with reward 2 in
   the up state, F[r<=r0] down is an exponential race against the reward
   clock: sojourn S satisfies 2S <= r0, so P = 1 - exp(-0.7 r0 / 2). *)
let test_until_reward_bounded () =
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 0.7) ] ~rewards:[| 2.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:2 [ ("down", [ 1 ]) ] in
  let ctx = Checker.make ~epsilon:1e-13 mrm labeling in
  let v = probs ctx "P=? ( F[r<=3] down )" in
  check_close ~tol:1e-11 "dual exp cdf" (1.0 -. Float.exp (-0.7 *. 1.5)) v.{0};
  (* Zero-reward non-absorbing state: the paper's restriction applies. *)
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 0.7) ] ~rewards:[| 0.0; 0.0 |]
  in
  let ctx = Checker.make mrm labeling in
  (match probs ctx "P=? ( F[r<=3] down )" with
   | exception Checker.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported for zero-reward duality")

(* P2 must agree with P3 when the time bound provably cannot bite:
   rewards >= 6 while alive means r <= 50 forces t <= 50/6 < 10. *)
let test_p2_p3_consistency () =
  let ctx = server () in
  let v2 = probs ctx "P=? ( up U[r<=50] down )" in
  let v3 = probs ctx "P=? ( up U[t<=10][r<=50] down )" in
  check_close ~tol:1e-7 "state 0" v2.{0} v3.{0};
  check_close ~tol:1e-7 "state 1" v2.{1} v3.{1}

let test_steady () =
  let ctx = server () in
  let v = probs ctx "S=? ( up )" in
  (* Stationary distribution of the 3-state cycle: solve by hand.
     Balance: pi0 * 0.1 = pi1 * 2.0; pi2 * 1.0 = pi1 * 0.1. *)
  let pi1 = 1.0 /. (1.0 +. 20.0 +. 0.1) in
  let expected_up = (20.0 *. pi1) +. pi1 in
  check_close ~tol:1e-8 "steady up from 0" expected_up v.{0};
  check_close ~tol:1e-8 "steady up from 2 (irreducible)" expected_up v.{2};
  (* Reducible chain: limit depends on the start. *)
  let mrm =
    Markov.Mrm.of_transitions ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ]
      ~rewards:[| 0.0; 0.0; 0.0 |]
  in
  let labeling = Markov.Labeling.make ~n:3 [ ("a", [ 1 ]) ] in
  let ctx = Checker.make mrm labeling in
  let v = probs ctx "S=? ( a )" in
  check_close ~tol:1e-9 "absorption split" 0.25 v.{0};
  check_close "from a itself" 1.0 v.{1};
  check_close "from b" 0.0 v.{2}

let test_nested () =
  let ctx = server () in
  (* Nesting: states from which a (probably reachable) crash is followed
     by a quick recovery.  The inner P becomes an atomic-like set. *)
  let text = "P>=0.5 ( (P>=0.9 ( F[t<=10] full )) U[t<=100] down )" in
  let mask = Checker.sat ctx (Logic.Parser.state_formula text) in
  Alcotest.(check int) "mask length" 3 (Array.length mask);
  (* Sanity: the inner set contains at least states 0 and 1. *)
  let inner = Checker.sat ctx (Logic.Parser.state_formula "P>=0.9 ( F[t<=10] full )") in
  Alcotest.(check bool) "inner holds at full" true inner.(0)

let test_verdicts () =
  let ctx = server () in
  match Checker.eval_query ctx (Logic.Parser.query "S>=0.99 ( up )") with
  | Checker.Boolean mask ->
    Alcotest.(check (list bool)) "verdict" [ true; true; true ]
      (Array.to_list mask)
  | _ -> Alcotest.fail "expected boolean"

let test_engine_selection_consistency () =
  (* The same P3 formula through all three engines. *)
  let answers =
    List.map
      (fun engine ->
        let mrm =
          Markov.Mrm.of_transitions ~n:3
            [ (0, 1, 0.1); (1, 2, 0.1); (1, 0, 2.0); (2, 1, 1.0) ]
            ~rewards:[| 10.0; 6.0; 0.0 |]
        in
        let labeling =
          Markov.Labeling.make ~n:3 [ ("up", [ 0; 1 ]); ("down", [ 2 ]) ]
        in
        let ctx = Checker.make ~engine mrm labeling in
        (probs ctx "P=? ( up U[t<=8][r<=64] down )").{0})
      [ Perf.Engine.Occupation_time { epsilon = 1e-12 };
        Perf.Engine.Pseudo_erlang { phases = 4096 };
        Perf.Engine.Discretize { step = 1.0 /. 256.0 } ]
  in
  match answers with
  | [ a; b; c ] ->
    check_close ~tol:2e-3 "erlang near sericola" a b;
    check_close ~tol:2e-3 "discretise near sericola" a c
  | _ -> assert false

let suite =
  ( "checker",
    [ Alcotest.test_case "boolean layer" `Quick test_boolean_layer;
      Alcotest.test_case "next operator" `Quick test_next;
      Alcotest.test_case "until unbounded (P0)" `Quick test_until_unbounded;
      Alcotest.test_case "until time-bounded (P1)" `Quick
        test_until_time_bounded;
      Alcotest.test_case "until reward-bounded (P2)" `Quick
        test_until_reward_bounded;
      Alcotest.test_case "P2/P3 consistency" `Quick test_p2_p3_consistency;
      Alcotest.test_case "steady state" `Quick test_steady;
      Alcotest.test_case "nested formulas" `Quick test_nested;
      Alcotest.test_case "boolean verdicts" `Quick test_verdicts;
      Alcotest.test_case "engine selection" `Quick
        test_engine_selection_consistency ] )
