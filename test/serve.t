The serving daemon on stdio: one NDJSON request per line, one response
per line, strictly in request order.  The check result object carries
the same floats as the csrl-check --batch run of the same query in
cli.t (0.37447743176383741...) — the daemon's bit-identity claim.  A
microscopic deadline expires while the request waits behind the first
check, a frontier sweep answers with its staircase corners (and a
non-frontier query behind the frontier kind is a bad_request), a
malformed line and bad queries are answered without killing
the session, eviction makes later requests (but not earlier ones) fail,
and everything after shutdown is refused:

  $ csrl-serve <<'EOF'
  > {"kind": "load", "model": "adhoc"}
  > {"kind": "list"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] call_initiated )", "id": "c1"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] call_initiated )", "id": "c2", "deadline_ms": 0.000001}
  > {"kind": "quantile", "model": "adhoc", "query": "P=? ( true U[t<=1] doze )", "variable": "t", "target": 0.5, "hi": 24}
  > {"kind": "frontier", "model": "adhoc", "query": "frontier[3] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )", "id": "f1"}
  > {"kind": "frontier", "model": "adhoc", "query": "P=? ( F[t<=2] doze )", "id": "f2"}
  > not json
  > {"kind": "check", "model": "adhoc", "query": "P=? ( oops"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] no_such_prop )"}
  > {"kind": "evict", "model": "adhoc"}
  > {"kind": "check", "model": "adhoc", "query": "true", "id": "gone"}
  > {"kind": "stats"}
  > {"kind": "shutdown"}
  > {"kind": "list", "id": "late"}
  > EOF
  {"ok":true,"kind":"load","model":"adhoc","states":9,"transitions":24}
  {"ok":true,"kind":"list","models":[{"name":"adhoc","states":9}]}
  {"ok":true,"kind":"check","id":"c1","model":"adhoc","query":"P=? (F[t<=2] call_initiated)","result":{"kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}}
  {"ok":false,"error":"deadline_exceeded","message":"deadline of 1e-06 ms expired in the queue","id":"c2"}
  {"ok":true,"kind":"quantile","model":"adhoc","variable":"t","target":0.5,"hi":24,"tolerance":1e-06,"value":0.072197198867797852,"achieved":0.50000107668197113,"evaluations":26}
  {"ok":true,"kind":"frontier","id":"f1","model":"adhoc","query":"frontier[3] P>=0.3 ((call_idle | doze) U[t<=6][r<=600] call_initiated)","target":0.3,"time_bound":6,"reward_bound":600,"grid":3,"tolerance":1e-06,"points":[{"t":4,"r":105.84490701570557,"probability":0.30000000088674905},{"t":6,"r":105.83485197275877,"probability":0.30000000064211185}],"evaluations":63}
  {"ok":false,"error":"bad_request","message":"frontier needs a frontier query: 'frontier[N] P>=p ( phi U[t<=T][r<=R] psi )'","id":"f2"}
  {"ok":false,"error":"parse_error","message":"JSON parse error at offset 0: expected null"}
  {"ok":false,"error":"query_parse_error","message":"parse error at position 10: expected 'U' in a path formula"}
  {"ok":false,"error":"unknown_proposition","message":"unknown atomic proposition \"no_such_prop\""}
  {"ok":true,"kind":"evict","model":"adhoc"}
  {"ok":false,"error":"unknown_model","message":"model \"adhoc\" is not loaded","id":"gone"}
  {"ok":true,"kind":"stats","requests":{"check":5,"evict":1,"frontier":2,"list":1,"load":1,"quantile":1,"shutdown":0,"stats":1,"total":12},"errors":6,"overloaded":0,"deadline_exceeded":1,"models":[],"fox_glynn":{"lookups":216,"hits":186,"misses":30,"hit_rate":0.86111111111111116}}
  {"ok":true,"kind":"shutdown"}
  {"ok":false,"error":"shutting_down","message":"the server is draining and stops accepting requests","id":"late"}

A .gcm guarded-command file loads as a symbolic model: checks run the
sliding-window engine on demand and answer with a certified interval
plus window statistics, a repeated check hits the query memo (same
bytes, warm space), list reports the states interned so far, quantile
sweeps are refused with a pointer at the explicit pipeline, and a
broken file reports its file:line:col position:

  $ cat > chain.gcm <<'EOF'
  > module chain
  >   x : [0..3] init 0;
  >   [] x < 3 -> 1.0 : (x'=x+1);
  > endmodule
  > label "full" = x=3;
  > EOF
  $ cat > broken.gcm <<'EOF'
  > module m
  >   x : [0..2] init 5;
  > endmodule
  > EOF
  $ csrl-serve <<'EOF'
  > {"kind": "load", "model": "chain", "file": "chain.gcm"}
  > {"kind": "check", "model": "chain", "query": "P=? ( true U[t<=1] full )", "id": "k1"}
  > {"kind": "check", "model": "chain", "query": "P=? ( true U[t<=1] full )", "id": "k2"}
  > {"kind": "list"}
  > {"kind": "quantile", "model": "chain", "query": "P=? ( true U[t<=1] full )", "variable": "t", "target": 0.5, "hi": 8}
  > {"kind": "load", "model": "oops", "file": "broken.gcm"}
  > {"kind": "shutdown"}
  > EOF
  {"ok":true,"kind":"load","model":"chain","symbolic":true,"states_interned":1}
  {"ok":true,"kind":"check","id":"k1","model":"chain","query":"P=? (F[t<=1] full)","result":{"kind":"numeric","value":0.0803013970395953,"delta":3.179884133786004e-11,"lower":0.080301397007796455,"upper":0.080301397071394137,"fallback":false,"window":{"peak_window":1,"states_expanded":3,"mass_dropped":0,"iterations":3,"restarts":0,"rate":1}}}
  {"ok":true,"kind":"check","id":"k2","model":"chain","query":"P=? (F[t<=1] full)","result":{"kind":"numeric","value":0.0803013970395953,"delta":3.179884133786004e-11,"lower":0.080301397007796455,"upper":0.080301397071394137,"fallback":false,"window":{"peak_window":1,"states_expanded":3,"mass_dropped":0,"iterations":3,"restarts":0,"rate":1}}}
  {"ok":true,"kind":"list","models":[{"name":"chain","states":4}]}
  {"ok":false,"error":"unsupported","message":"quantile search runs on explicit models only; check the .gcm model directly or load its materialised .mrm"}
  {"ok":false,"error":"load_error","message":"broken.gcm:2:3: initial value 5 of 'x' outside [0..2]"}
  {"ok":true,"kind":"shutdown"}

Over a Unix-domain socket the registry persists across connections: the
first client's check shows up in the second client's stats (one check
counted, its path-probability vector sitting in the warm cache), and
--shutdown stops the daemon from a third connection:

  $ csrl-serve --socket sv.sock --preload adhoc &
  $ csrl-client --connect sv.sock <<'EOF'
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] call_initiated )"}
  > EOF
  {"ok":true,"kind":"check","model":"adhoc","query":"P=? (F[t<=2] call_initiated)","result":{"kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}}
  $ csrl-client --connect sv.sock <<'EOF'
  > {"kind": "stats"}
  > EOF
  {"ok":true,"kind":"stats","requests":{"check":1,"evict":0,"frontier":0,"list":0,"load":0,"quantile":0,"shutdown":0,"stats":1,"total":2},"errors":0,"overloaded":0,"deadline_exceeded":0,"models":[{"name":"adhoc","states":9,"cache":{"path":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"reduced":{"lookups":0,"hits":0,"misses":0,"hit_rate":0},"reduction":{"lookups":0,"hits":0,"misses":0,"hit_rate":0},"sat":{"lookups":2,"hits":0,"misses":2,"hit_rate":0},"until":{"lookups":0,"hits":0,"misses":0,"hit_rate":0}}}],"fox_glynn":{"lookups":1,"hits":0,"misses":1,"hit_rate":0}}
  $ csrl-client --connect sv.sock --shutdown < /dev/null
  {"ok":true,"kind":"shutdown"}
  $ wait

The daemon unlinks its socket on the way out:

  $ test -e sv.sock
  [1]

The same stdio session at --executors 4 is byte-identical to the
single-executor transcript above — per-model sharding keeps adhoc's
requests in admission order on one executor, and list/stats/shutdown
run under the session barrier, so even the stats counters and the
Fox-Glynn cache numbers are pinned:

  $ csrl-serve --executors 4 <<'EOF'
  > {"kind": "load", "model": "adhoc"}
  > {"kind": "list"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] call_initiated )", "id": "c1"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] call_initiated )", "id": "c2", "deadline_ms": 0.000001}
  > {"kind": "quantile", "model": "adhoc", "query": "P=? ( true U[t<=1] doze )", "variable": "t", "target": 0.5, "hi": 24}
  > {"kind": "frontier", "model": "adhoc", "query": "frontier[3] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )", "id": "f1"}
  > {"kind": "frontier", "model": "adhoc", "query": "P=? ( F[t<=2] doze )", "id": "f2"}
  > not json
  > {"kind": "check", "model": "adhoc", "query": "P=? ( oops"}
  > {"kind": "check", "model": "adhoc", "query": "P=? ( F[t<=2] no_such_prop )"}
  > {"kind": "evict", "model": "adhoc"}
  > {"kind": "check", "model": "adhoc", "query": "true", "id": "gone"}
  > {"kind": "stats"}
  > {"kind": "shutdown"}
  > {"kind": "list", "id": "late"}
  > EOF
  {"ok":true,"kind":"load","model":"adhoc","states":9,"transitions":24}
  {"ok":true,"kind":"list","models":[{"name":"adhoc","states":9}]}
  {"ok":true,"kind":"check","id":"c1","model":"adhoc","query":"P=? (F[t<=2] call_initiated)","result":{"kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}}
  {"ok":false,"error":"deadline_exceeded","message":"deadline of 1e-06 ms expired in the queue","id":"c2"}
  {"ok":true,"kind":"quantile","model":"adhoc","variable":"t","target":0.5,"hi":24,"tolerance":1e-06,"value":0.072197198867797852,"achieved":0.50000107668197113,"evaluations":26}
  {"ok":true,"kind":"frontier","id":"f1","model":"adhoc","query":"frontier[3] P>=0.3 ((call_idle | doze) U[t<=6][r<=600] call_initiated)","target":0.3,"time_bound":6,"reward_bound":600,"grid":3,"tolerance":1e-06,"points":[{"t":4,"r":105.84490701570557,"probability":0.30000000088674905},{"t":6,"r":105.83485197275877,"probability":0.30000000064211185}],"evaluations":63}
  {"ok":false,"error":"bad_request","message":"frontier needs a frontier query: 'frontier[N] P>=p ( phi U[t<=T][r<=R] psi )'","id":"f2"}
  {"ok":false,"error":"parse_error","message":"JSON parse error at offset 0: expected null"}
  {"ok":false,"error":"query_parse_error","message":"parse error at position 10: expected 'U' in a path formula"}
  {"ok":false,"error":"unknown_proposition","message":"unknown atomic proposition \"no_such_prop\""}
  {"ok":true,"kind":"evict","model":"adhoc"}
  {"ok":false,"error":"unknown_model","message":"model \"adhoc\" is not loaded","id":"gone"}
  {"ok":true,"kind":"stats","requests":{"check":5,"evict":1,"frontier":2,"list":1,"load":1,"quantile":1,"shutdown":0,"stats":1,"total":12},"errors":6,"overloaded":0,"deadline_exceeded":1,"models":[],"fox_glynn":{"lookups":216,"hits":186,"misses":30,"hit_rate":0.86111111111111116}}
  {"ok":true,"kind":"shutdown"}
  {"ok":false,"error":"shutting_down","message":"the server is draining and stops accepting requests","id":"late"}

Over TCP (port 0 picks an ephemeral port, reported on stderr) the same
protocol answers the same bytes, and a builtin alias gets its own
registry entry:

  $ csrl-serve --tcp 127.0.0.1:0 --executors 2 --preload adhoc 2>tcp.err &
  $ while ! grep -q "listening on" tcp.err; do sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on 127\.0\.0\.1://p' tcp.err)
  $ csrl-client --tcp 127.0.0.1:$PORT --shutdown <<'EOF'
  > {"kind": "load", "model": "twin", "builtin": "adhoc"}
  > {"kind": "check", "model": "twin", "query": "P=? ( F[t<=2] call_initiated )"}
  > EOF
  {"ok":true,"kind":"load","model":"twin","states":9,"transitions":24}
  {"ok":true,"kind":"check","model":"twin","query":"P=? (F[t<=2] call_initiated)","result":{"kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}}
  {"ok":true,"kind":"shutdown"}
  $ wait

Serving flags are validated up front, before anything starts:

  $ csrl-serve --queue 0
  --queue needs a positive capacity
  [2]

  $ csrl-serve --deadline 0
  --deadline needs a positive budget in milliseconds
  [2]

  $ csrl-serve --jobs 0
  --jobs needs a positive count
  [2]

  $ csrl-serve --epsilon 1
  --epsilon needs a value in (0,1)
  [2]

  $ csrl-serve --engine bogus
  unknown engine "bogus" (try sericola[:eps], erlang[:k], discretise[:d], windowed[:eps])
  [2]

  $ csrl-serve --preload nope
  --preload: unknown built-in model "nope"
  [2]

  $ csrl-serve --executors 0
  --executors needs a positive count
  [2]

  $ csrl-serve --executors two
  --executors needs a positive count
  [2]

  $ csrl-serve --tcp localhost
  --tcp needs HOST:PORT with a numeric port
  [2]

  $ csrl-serve --tcp :8080
  --tcp needs HOST:PORT with a numeric port
  [2]

  $ csrl-serve --tcp 127.0.0.1:http
  --tcp needs HOST:PORT with a numeric port
  [2]

The client needs exactly one transport:

  $ csrl-client < /dev/null
  csrl-client: exactly one of --connect or --tcp is required
  [2]

  $ csrl-client --connect sv.sock --tcp 127.0.0.1:1 < /dev/null
  csrl-client: exactly one of --connect or --tcp is required
  [2]
