(* Tests for the impulse-reward extension (the paper's other Section 6
   future-work item): exact support in the discretisation engine, the
   simulator and the expected-reward analyses; approximate support in the
   pseudo-Erlang engine; explicit rejection elsewhere. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let impulse_matrix ~n entries = Linalg.Csr.of_coo ~rows:n ~cols:n entries

(* The canonical closed-form case: s0 (rate reward zero) jumps to an
   absorbing goal with rate lam, earning impulse c on the jump.
   Y_t is 0 before the jump and c after it, so
   Pr{Y_t <= r, X_t = goal} = (1 - e^-lam t) 1{c <= r}. *)
let single_impulse ~lam ~c =
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, lam) ] ~rewards:[| 0.0; 0.0 |]
  in
  Markov.Mrm.with_impulses m (impulse_matrix ~n:2 [ (0, 1, c) ])

let test_validation () =
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 1.0; 0.0 |]
  in
  Alcotest.(check bool) "no impulses" false (Markov.Mrm.has_impulses m);
  check_close "impulse default" 0.0 (Markov.Mrm.impulse m 0 1);
  let m' = Markov.Mrm.with_impulses m (impulse_matrix ~n:2 [ (0, 1, 2.5) ]) in
  Alcotest.(check bool) "has impulses" true (Markov.Mrm.has_impulses m');
  check_close "impulse stored" 2.5 (Markov.Mrm.impulse m' 0 1);
  check_close "max impulse" 2.5 (Markov.Mrm.max_impulse m');
  (* Impulse flow: rate * impulse. *)
  let flow = Markov.Mrm.impulse_flow m' in
  check_close "flow source" 2.5 flow.{0};
  check_close "flow sink" 0.0 flow.{1};
  (* Impulses on missing transitions are rejected. *)
  (try
     ignore (Markov.Mrm.with_impulses m (impulse_matrix ~n:2 [ (1, 0, 1.0) ]));
     Alcotest.fail "accepted an impulse without a transition"
   with Invalid_argument _ -> ());
  (* Negative impulses are rejected. *)
  (try
     ignore (Markov.Mrm.with_impulses m (impulse_matrix ~n:2 [ (0, 1, -1.0) ]));
     Alcotest.fail "accepted a negative impulse"
   with Invalid_argument _ -> ())

let test_discretisation_closed_form () =
  let lam = 0.8 and t = 2.0 in
  let reach = 1.0 -. Float.exp (-.lam *. t) in
  let goal = [| false; true |] in
  (* c = 1 <= r = 2: the jump fits the budget. *)
  let p =
    Perf.Problem.of_initial_state (single_impulse ~lam ~c:1.0) ~init:0 ~goal
      ~time_bound:t ~reward_bound:2.0
  in
  check_close ~tol:2e-3 "impulse within budget" reach
    (Perf.Discretization.solve ~step:(1.0 /. 128.0) p);
  (* c = 3 > r = 2: reaching the goal always blows the budget. *)
  let p =
    Perf.Problem.of_initial_state (single_impulse ~lam ~c:3.0) ~init:0 ~goal
      ~time_bound:t ~reward_bound:2.0
  in
  check_close "impulse over budget" 0.0
    (Perf.Discretization.solve ~step:(1.0 /. 128.0) p)

let test_erlang_closed_form () =
  let lam = 0.8 and t = 2.0 in
  let reach = 1.0 -. Float.exp (-.lam *. t) in
  let goal = [| false; true |] in
  let p =
    Perf.Problem.of_initial_state (single_impulse ~lam ~c:1.0) ~init:0 ~goal
      ~time_bound:t ~reward_bound:2.0
  in
  check_close ~tol:2e-3 "impulse within budget" reach
    (Perf.Erlang_approx.solve ~phases:2048 p);
  let p =
    Perf.Problem.of_initial_state (single_impulse ~lam ~c:3.0) ~init:0 ~goal
      ~time_bound:t ~reward_bound:2.0
  in
  check_close ~tol:2e-3 "impulse over budget" 0.0
    (Perf.Erlang_approx.solve ~phases:2048 p)

(* Mixed rate + impulse rewards: s0 has rate reward 1 and the jump earns
   c, so Y at the goal is sojourn + c and
   Pr{Y_t <= r, X_t = goal} = Pr{T <= min(t, r - c)} for r >= c. *)
let mixed_closed_form ~engine =
  let lam = 1.1 and t = 3.0 and c = 1.0 and r = 2.5 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, lam) ] ~rewards:[| 1.0; 0.0 |]
  in
  let m = Markov.Mrm.with_impulses m (impulse_matrix ~n:2 [ (0, 1, c) ]) in
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
      ~time_bound:t ~reward_bound:r
  in
  let exact = 1.0 -. Float.exp (-.lam *. Float.min t (r -. c)) in
  (exact, engine p)

let test_mixed_rewards () =
  let exact, value =
    mixed_closed_form ~engine:(Perf.Discretization.solve ~step:(1.0 /. 256.0))
  in
  check_close ~tol:3e-3 "discretisation mixed" exact value;
  let exact, value =
    mixed_closed_form ~engine:(Perf.Erlang_approx.solve ~phases:4096)
  in
  check_close ~tol:3e-3 "erlang mixed" exact value

let test_simulator_and_expectations () =
  let lam = 1.5 and c = 2.0 and t = 1.2 in
  let m = single_impulse ~lam ~c in
  (* Trajectory accumulation includes the impulse. *)
  let rng = Sim.Rng.create ~seed:99L in
  for _ = 1 to 200 do
    let tr = Sim.Trajectory.sample rng m ~init:0 ~horizon:t in
    let expected =
      if tr.Sim.Trajectory.final_state = 1 then c else 0.0
    in
    check_close "trajectory reward" expected tr.Sim.Trajectory.final_reward
  done;
  (* E[Y_t] = c * P(jump <= t). *)
  check_close ~tol:1e-9 "cumulative with impulse"
    (c *. (1.0 -. Float.exp (-.lam *. t)))
    (Markov.Expected_reward.cumulative m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]) ~t);
  (* Expected reward to reach the goal is exactly the impulse. *)
  let values = Markov.Expected_reward.reachability m ~goal:[| false; true |] in
  check_close "reachability reward" c values.{0};
  (* Long-run rate: the chain gets absorbed, so the rate tends to 0. *)
  check_close "steady rate" 0.0
    (Markov.Expected_reward.steady_rate m ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]));
  (* A cyclic model: 0 <-> 1, impulse c on 0 -> 1.  The long-run impulse
     flow is pi_0 * lam * c. *)
  let cyc =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 2.0); (1, 0, 6.0) ]
      ~rewards:[| 0.0; 0.0 |]
  in
  let cyc = Markov.Mrm.with_impulses cyc (impulse_matrix ~n:2 [ (0, 1, c) ]) in
  (* pi = (0.75, 0.25). *)
  check_close ~tol:1e-8 "cyclic steady impulse rate" (0.75 *. 2.0 *. c)
    (Markov.Expected_reward.steady_rate cyc ~init:(Linalg.Vec.of_array [| 1.0; 0.0 |]))

let test_rejections () =
  let m = single_impulse ~lam:1.0 ~c:1.0 in
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
      ~time_bound:1.0 ~reward_bound:2.0
  in
  (try
     ignore (Perf.Sericola.solve p);
     Alcotest.fail "sericola accepted impulses"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "not dualizable" false (Markov.Duality.is_dualizable m);
  (try
     ignore
       (Markov.Lumping.compute m
          (Markov.Labeling.empty ~n:(Markov.Mrm.n_states m)));
     Alcotest.fail "lumping accepted impulses"
   with Invalid_argument _ -> ());
  Alcotest.(check bool) "never trivially satisfied" false
    (Perf.Problem.reward_trivially_satisfied
       (Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
          ~time_bound:1.0 ~reward_bound:1e12))

let test_reduced_keeps_states () =
  let m =
    Markov.Mrm.of_transitions ~n:4
      [ (0, 1, 1.0); (0, 2, 1.0); (1, 3, 2.0); (2, 3, 2.0) ]
      ~rewards:[| 1.0; 1.0; 1.0; 0.0 |]
  in
  (* Different impulses into the two goal-ish states prevent merging. *)
  let m =
    Markov.Mrm.with_impulses m (impulse_matrix ~n:4 [ (0, 1, 1.0); (0, 2, 5.0) ])
  in
  let phi = [| true; false; false; false |] in
  let psi = [| false; true; true; false |] in
  let red = Perf.Reduced.reduce m ~phi ~psi in
  Alcotest.(check bool) "not amalgamated" false red.Perf.Reduced.amalgamated;
  Alcotest.(check int) "all states kept" 4
    (Markov.Mrm.n_states red.Perf.Reduced.mrm);
  Alcotest.(check (list bool)) "goal mask is psi"
    (Array.to_list psi)
    (Array.to_list red.Perf.Reduced.goal);
  (* Impulses into the goals survive; rewards of absorbed states are 0. *)
  check_close "impulse kept" 5.0 (Markov.Mrm.impulse red.Perf.Reduced.mrm 0 2);
  check_close "absorbed reward zero" 0.0 (Markov.Mrm.reward red.Perf.Reduced.mrm 1)

(* The checker end to end with impulse models: P3 through the
   discretisation engine matches simulation. *)
let test_checker_with_impulses () =
  let m =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 0.5) ]
      ~rewards:[| 1.0; 2.0; 0.0 |]
  in
  let m =
    Markov.Mrm.with_impulses m
      (impulse_matrix ~n:3 [ (0, 1, 1.0); (1, 2, 2.0) ])
  in
  let labeling = Markov.Labeling.make ~n:3 [ ("goal", [ 2 ]) ] in
  let ctx =
    Checker.make ~engine:(Perf.Engine.Discretize { step = 1.0 /. 128.0 }) m
      labeling
  in
  let values =
    match
      Checker.eval_query ctx (Logic.Parser.query "P=? ( F[t<=4][r<=8] goal )")
    with
    | Checker.Numeric v -> v
    | _ -> Alcotest.fail "expected numeric"
  in
  let rng = Sim.Rng.create ~seed:2026L in
  let iv =
    Sim.Estimate.until_probability ~confidence:0.999 rng m ~init:0
      ~phi:[| true; true; true |]
      ~psi:[| false; false; true |] ~time_bound:4.0 ~reward_bound:8.0
      ~samples:60_000
  in
  if
    not
      (Sim.Estimate.contains iv values.{0}
      || Float.abs (values.{0} -. iv.Sim.Estimate.mean) < 5e-3)
  then
    Alcotest.failf "checker %.5f outside MC %.5f +- %.5f" values.{0}
      iv.Sim.Estimate.mean iv.Sim.Estimate.half_width

(* Engines + simulation agree on random impulse models. *)
let prop_impulse_engines_agree =
  QCheck2.Test.make ~count:15 ~name:"impulse engines vs simulation"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.with_impulses
      in
      let tv =
        let limit = Perf.Discretization.max_stable_step p in
        let d = ref (1.0 /. 16.0) in
        while !d > limit || !d > 1.0 /. 128.0 do
          d := !d /. 2.0
        done;
        Perf.Discretization.solve ~step:!d p
      in
      let erlang = Perf.Erlang_approx.solve ~phases:512 p in
      if Float.abs (tv -. erlang) > 0.03 then
        QCheck2.Test.fail_reportf "tv %.5f vs erlang %.5f (seed %d)" tv erlang
          seed
      else begin
        let init =
          let found = ref 0 in
          Array.iteri (fun i v -> if v > 0.5 then found := i) (Linalg.Vec.to_array p.Perf.Problem.init);
          !found
        in
        let rng = Sim.Rng.create ~seed:(Int64.of_int (seed + 31)) in
        let iv =
          Sim.Estimate.reward_bounded_reachability ~confidence:0.999 rng
            p.Perf.Problem.mrm ~init ~goal:p.Perf.Problem.goal
            ~time_bound:p.Perf.Problem.time_bound
            ~reward_bound:p.Perf.Problem.reward_bound ~samples:20_000
        in
        let ok =
          Sim.Estimate.contains iv tv
          || Float.abs (tv -. iv.Sim.Estimate.mean) <= 6e-3
        in
        if not ok then
          QCheck2.Test.fail_reportf "tv %.5f outside MC %.5f +- %.5f (seed %d)"
            tv iv.Sim.Estimate.mean iv.Sim.Estimate.half_width seed
        else true
      end)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "impulse rewards",
    [ Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "discretisation closed form" `Quick
        test_discretisation_closed_form;
      Alcotest.test_case "erlang closed form" `Quick test_erlang_closed_form;
      Alcotest.test_case "mixed rate and impulse" `Quick test_mixed_rewards;
      Alcotest.test_case "simulator and expectations" `Quick
        test_simulator_and_expectations;
      Alcotest.test_case "rejections" `Quick test_rejections;
      Alcotest.test_case "Theorem 1 without amalgamation" `Quick
        test_reduced_keeps_states;
      Alcotest.test_case "checker with impulses" `Quick
        test_checker_with_impulses;
      q prop_impulse_engines_agree ] )
