(* Tests for the Theorem 1 reduction and the three Section 4 engines,
   against closed forms, against each other, and against simulation. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

(* A minimal nontrivial problem with a closed form:

     s0 (reward 1) --rate lam--> goal (reward 0, absorbing)

   Pr{Y_t <= r, X_t = goal} = Pr{jump before min(t, r)}
                            = 1 - exp(-lam * min(t, r))
   (the jump must happen before t, and the reward earned until the jump is
   the sojourn itself, so it must also not exceed r). *)
let single_jump_problem ~lam ~t ~r =
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, lam) ] ~rewards:[| 1.0; 0.0 |]
  in
  Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
    ~time_bound:t ~reward_bound:r

let single_jump_exact ~lam ~t ~r = 1.0 -. Float.exp (-.lam *. Float.min t r)

let test_problem_validation () =
  let m = Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 1.0; 0.0 |] in
  Alcotest.check_raises "bad init"
    (Invalid_argument "Problem.make: init is not a distribution") (fun () ->
      ignore
        (Perf.Problem.make m ~init:(Linalg.Vec.of_array [| 0.5; 0.6 |]) ~goal:[| true; true |]
           ~time_bound:1.0 ~reward_bound:1.0));
  Alcotest.check_raises "zero time"
    (Invalid_argument "Problem.make: time bound must be positive and finite")
    (fun () ->
      ignore
        (Perf.Problem.of_initial_state m ~init:0 ~goal:[| true; true |]
           ~time_bound:0.0 ~reward_bound:1.0));
  Alcotest.check_raises "negative reward bound"
    (Invalid_argument
       "Problem.make: reward bound must be non-negative and finite")
    (fun () ->
      ignore
        (Perf.Problem.of_initial_state m ~init:0 ~goal:[| true; true |]
           ~time_bound:1.0 ~reward_bound:(-1.0)));
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
      ~time_bound:2.0 ~reward_bound:3.0
  in
  Alcotest.(check bool) "trivial: r >= rho_max t" true
    (Perf.Problem.reward_trivially_satisfied p);
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
      ~time_bound:2.0 ~reward_bound:1.0
  in
  Alcotest.(check bool) "nontrivial" false
    (Perf.Problem.reward_trivially_satisfied p)

let test_reduced_case_study () =
  let m = Models.Adhoc.mrm () in
  let l = Models.Adhoc.labeling () in
  let idle = Markov.Labeling.sat l "call_idle" in
  let doze = Markov.Labeling.sat l "doze" in
  let phi = Array.mapi (fun i a -> a || doze.(i)) idle in
  let psi = Markov.Labeling.sat l "call_initiated" in
  let red = Perf.Reduced.reduce m ~phi ~psi in
  (* The paper: "a reduced MRM M' with three transient and two absorbing
     states". *)
  Alcotest.(check int) "five states" 5 (Markov.Mrm.n_states red.Perf.Reduced.mrm);
  Alcotest.(check bool) "amalgamated" true red.Perf.Reduced.amalgamated;
  let chain = Markov.Mrm.ctmc red.Perf.Reduced.mrm in
  let goal_state = 3 and fail_state = 4 in
  Alcotest.(check (list bool)) "goal mask"
    [ false; false; false; true; false ]
    (Array.to_list red.Perf.Reduced.goal);
  Alcotest.(check bool) "goal absorbing" true
    (Markov.Ctmc.is_absorbing chain goal_state);
  Alcotest.(check bool) "fail absorbing" true
    (Markov.Ctmc.is_absorbing chain fail_state);
  check_close "goal reward zero" 0.0
    (Markov.Mrm.reward red.Perf.Reduced.mrm goal_state);
  (* Transient rewards: idle+idle 100, idle+active 200, doze 20. *)
  let rewards =
    Array.sub (Linalg.Vec.to_array (Markov.Mrm.rewards red.Perf.Reduced.mrm)) 0 3
    |> Array.to_list |> List.sort compare
  in
  Alcotest.(check (list (float 0.0))) "transient rewards" [ 20.0; 100.0; 200.0 ]
    rewards;
  (* psi states map to GOAL, non-phi states to FAIL. *)
  Array.iteri
    (fun s target ->
      if psi.(s) then Alcotest.(check int) "psi to GOAL" goal_state target
      else if not phi.(s) then
        Alcotest.(check int) "bad to FAIL" fail_state target)
    red.Perf.Reduced.state_map

let engines ~fine =
  [ ("sericola", fun p -> Perf.Sericola.solve ~epsilon:1e-12 p);
    ( "erlang",
      fun p -> Perf.Erlang_approx.solve ~phases:(if fine then 2048 else 256) p );
    ( "discretise",
      fun p ->
        (* Random problems have bounds on a 1/16 grid; pick the largest
           power-of-two refinement that is stable and fine enough. *)
        let limit = Perf.Discretization.max_stable_step p in
        let target = if fine then 1.0 /. 1024.0 else 1.0 /. 256.0 in
        let d = ref (1.0 /. 16.0) in
        while !d > limit || !d > target do
          d := !d /. 2.0
        done;
        Perf.Discretization.solve ~step:!d p ) ]

let test_single_jump_closed_form () =
  List.iter
    (fun (t, r) ->
      let lam = 0.8 in
      let exact = single_jump_exact ~lam ~t ~r in
      let p = single_jump_problem ~lam ~t ~r in
      check_close ~tol:1e-9 (Printf.sprintf "sericola t=%g r=%g" t r) exact
        (Perf.Sericola.solve ~epsilon:1e-13 p);
      check_close ~tol:2e-3 (Printf.sprintf "erlang t=%g r=%g" t r) exact
        (Perf.Erlang_approx.solve ~phases:8192 p);
      if Float.rem t r < 1e-9 || Float.rem r t < 1e-9 then begin
        (* Discretisation needs a common grid for t and r. *)
        let d = Float.min t r /. 4096.0 in
        check_close ~tol:2e-3 (Printf.sprintf "discretise t=%g r=%g" t r)
          exact
          (Perf.Discretization.solve ~step:d p)
      end)
    [ (2.0, 1.0); (1.0, 2.0); (3.0, 3.0); (0.5, 4.0) ]

(* Two states a (reward 0) --lam--> b (reward 1, absorbing):
   H_ab(t, r) = Pr{Y_t > r, X_t = b | X_0 = a} = 1 - exp(-lam (t - r))
   for 0 <= r < t (jump must happen before t - r to accumulate more
   than r at rate 1 in b). *)
let test_joint_matrix_closed_form () =
  let lam = 1.3 and t = 2.0 in
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, lam) ] ~rewards:[| 0.0; 1.0 |]
  in
  List.iter
    (fun r ->
      let h = Perf.Sericola.joint_matrix ~epsilon:1e-13 m ~t ~r in
      check_close ~tol:1e-10 (Printf.sprintf "H_ab r=%g" r)
        (1.0 -. Float.exp (-.lam *. (t -. r)))
        h.(0).(1);
      check_close ~tol:1e-10 "H_aa" 0.0 h.(0).(0);
      (* From b itself: Y_t = t > r always. *)
      check_close ~tol:1e-10 "H_bb" 1.0 h.(1).(1))
    [ 0.0; 0.5; 1.0; 1.9 ];
  (* r above rho_max * t: H = 0. *)
  let h = Perf.Sericola.joint_matrix m ~t ~r:(t +. 1.0) in
  check_close "beyond max" 0.0 h.(0).(1)

(* Vector solver vs full-matrix solver on a nontrivial model. *)
let test_matrix_vs_vector () =
  let m =
    Markov.Mrm.of_transitions ~n:4
      [ (0, 1, 1.0); (1, 2, 2.0); (1, 0, 0.5); (2, 3, 1.5); (0, 3, 0.2) ]
      ~rewards:[| 1.0; 3.0; 2.0; 0.0 |]
  in
  let t = 1.7 and r = 2.5 in
  let goal = [| false; false; true; true |] in
  let p =
    Perf.Problem.of_initial_state m ~init:0 ~goal ~time_bound:t ~reward_bound:r
  in
  let d = Perf.Sericola.solve_detailed ~epsilon:1e-13 p in
  let h = Perf.Sericola.joint_matrix ~epsilon:1e-13 m ~t ~r in
  let tail_from_matrix = h.(0).(2) +. h.(0).(3) in
  check_close ~tol:1e-10 "tail matches" d.Perf.Sericola.tail_mass
    tail_from_matrix

let test_erlang_expansion_structure () =
  let p = single_jump_problem ~lam:1.0 ~t:1.0 ~r:2.0 in
  let chain = Perf.Erlang_approx.expanded_ctmc p ~phases:4 in
  (* 2 states x 4 phases + sink. *)
  Alcotest.(check int) "expanded size" 9 (Markov.Ctmc.n_states chain);
  (* State (s0, phase0): chain rate to (goal, phase0) and meter rate
     rho * k / r = 1 * 4 / 2 = 2 to (s0, phase1). *)
  check_close "chain move" 1.0 (Markov.Ctmc.rate chain 0 4);
  check_close "meter move" 2.0 (Markov.Ctmc.rate chain 0 1);
  (* Goal has reward zero: no meter transitions. *)
  check_close "goal exit" 0.0 (Markov.Ctmc.exit_rate chain 4);
  (* Last phase feeds the sink. *)
  check_close "sink feed" 2.0 (Markov.Ctmc.rate chain 3 8);
  Alcotest.check_raises "zero reward bound"
    (Invalid_argument "Erlang_approx: the reward bound must be positive")
    (fun () ->
      ignore
        (Perf.Erlang_approx.expanded_ctmc
           (single_jump_problem ~lam:1.0 ~t:1.0 ~r:0.0)
           ~phases:4))

let test_erlang_converges_from_below () =
  (* On the case study the paper observes monotone convergence from below
     in the number of phases. *)
  let p = single_jump_problem ~lam:0.9 ~t:3.0 ~r:1.5 in
  let values =
    List.map (fun k -> Perf.Erlang_approx.solve ~phases:k p) [ 1; 4; 16; 64; 256 ]
  in
  let exact = single_jump_exact ~lam:0.9 ~t:3.0 ~r:1.5 in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in phases" true (monotone values);
  List.iter
    (fun v ->
      if v > exact +. 1e-9 then
        Alcotest.failf "erlang overshoots: %.12g > %.12g" v exact)
    values

let test_discretization_validation () =
  let p = single_jump_problem ~lam:2.0 ~t:1.0 ~r:0.5 in
  check_close "stability limit" 0.5 (Perf.Discretization.max_stable_step p);
  (try
     ignore (Perf.Discretization.solve ~step:0.75 p);
     Alcotest.fail "accepted unstable step"
   with Invalid_argument _ -> ());
  (try
     ignore (Perf.Discretization.solve ~step:0.3 p);
     Alcotest.fail "accepted non-dividing step"
   with Invalid_argument _ -> ());
  let m =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0) ] ~rewards:[| 0.5; 0.0 |]
  in
  let p2 =
    Perf.Problem.of_initial_state m ~init:0 ~goal:[| false; true |]
      ~time_bound:1.0 ~reward_bound:0.25
  in
  (try
     ignore (Perf.Discretization.solve ~step:0.125 p2);
     Alcotest.fail "accepted fractional rewards"
   with Invalid_argument _ -> ())

let test_discretization_error_halves () =
  (* Table 4's pattern: halving d roughly halves the error. *)
  let p = single_jump_problem ~lam:1.0 ~t:2.0 ~r:1.0 in
  let exact = single_jump_exact ~lam:1.0 ~t:2.0 ~r:1.0 in
  let err d = Float.abs (Perf.Discretization.solve ~step:d p -. exact) in
  let e1 = err (1.0 /. 64.0) and e2 = err (1.0 /. 128.0) in
  let ratio = e1 /. e2 in
  if ratio < 1.5 || ratio > 3.0 then
    Alcotest.failf "error ratio %.3f not ~2 (e1=%g e2=%g)" ratio e1 e2

let test_engine_dispatch () =
  let p = single_jump_problem ~lam:1.0 ~t:1.0 ~r:5.0 in
  (* Reward trivially satisfied: every engine short-circuits to transient
     analysis, including pseudo-Erlang with r = 0-like corner cases. *)
  let exact = 1.0 -. Float.exp (-1.0) in
  List.iter
    (fun spec ->
      check_close ~tol:1e-10
        (Format.asprintf "%a" Perf.Engine.pp_spec spec)
        exact
        (Perf.Engine.solve spec p))
    [ Perf.Engine.Occupation_time { epsilon = 1e-12 };
      Perf.Engine.Pseudo_erlang { phases = 4 };
      Perf.Engine.Discretize { step = 0.25 } ];
  Alcotest.(check string) "names" "occupation-time"
    (Perf.Engine.name Perf.Engine.default)

let test_until_probabilities_via () =
  (* On the case study, the per-state vector: psi states 1, fail states 0,
     phi states the engine value. *)
  let m = Models.Adhoc.mrm () in
  let l = Models.Adhoc.labeling () in
  let idle = Markov.Labeling.sat l "call_idle" in
  let doze = Markov.Labeling.sat l "doze" in
  let phi = Array.mapi (fun i a -> a || doze.(i)) idle in
  let psi = Markov.Labeling.sat l "call_initiated" in
  let probs =
    Perf.Reduced.until_probabilities_via
      (Perf.Sericola.solve ~epsilon:1e-10)
      m ~phi ~psi ~time_bound:24.0 ~reward_bound:600.0
  in
  Array.iteri
    (fun s p ->
      if psi.(s) then check_close (Printf.sprintf "psi %d" s) 1.0 p
      else if not phi.(s) then check_close (Printf.sprintf "fail %d" s) 0.0 p
      else if p <= 0.0 || p >= 1.0 then
        Alcotest.failf "phi state %d has degenerate probability %g" s p)
    (Linalg.Vec.to_array probs);
  check_close ~tol:1e-7 "initial state value" 0.49699673
    probs.{Models.Adhoc.initial_state}

let test_solve_many () =
  (* The shared-recursion curve must agree with one-at-a-time solves,
     across bands and including degenerate bounds. *)
  let c = Models.Multiprocessor.default in
  let t = 100.0 in
  let bounds = [| 0.0; 50.0; 150.0; 290.0; 299.0; 299.9; 300.0; 1000.0 |] in
  let p = Models.Multiprocessor.performability c ~t ~r:1.0 in
  let curve = Perf.Sericola.solve_many ~epsilon:1e-11 p ~reward_bounds:bounds in
  Array.iteri
    (fun j r ->
      let single =
        Perf.Sericola.solve ~epsilon:1e-11
          (Models.Multiprocessor.performability c ~t ~r)
      in
      check_close ~tol:1e-9 (Printf.sprintf "r=%g" r) single curve.(j))
    bounds;
  (* The curve is a cdf: monotone, ending at 1 for r >= rho_max t. *)
  for j = 1 to Array.length bounds - 1 do
    if curve.(j) < curve.(j - 1) -. 1e-12 then
      Alcotest.failf "curve not monotone at %g" bounds.(j)
  done;
  check_close "total mass" 1.0 curve.(Array.length bounds - 1)

(* ---------------- cross-engine property ---------------------------- *)

let prop_engines_agree =
  QCheck2.Test.make ~count:25 ~name:"three engines agree on random MRMs"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let reference = Perf.Sericola.solve ~epsilon:1e-12 p in
      List.for_all
        (fun (name, solve) ->
          let v = solve p in
          let ok = Float.abs (v -. reference) <= 0.01 in
          if not ok then
            QCheck2.Test.fail_reportf
              "engine %s: %.8f vs sericola %.8f (seed %d)" name v reference
              seed
          else true)
        (engines ~fine:false))

let prop_sericola_vs_simulation =
  QCheck2.Test.make ~count:10 ~name:"sericola within Monte-Carlo interval"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let reference = Perf.Sericola.solve ~epsilon:1e-12 p in
      (* Point-mass initial state by construction. *)
      let init =
        let found = ref 0 in
        Array.iteri (fun i v -> if v > 0.5 then found := i) (Linalg.Vec.to_array p.Perf.Problem.init);
        !found
      in
      let rng = Sim.Rng.create ~seed:(Int64.of_int (seed + 99)) in
      let iv =
        Sim.Estimate.reward_bounded_reachability ~confidence:0.999 rng
          p.Perf.Problem.mrm ~init ~goal:p.Perf.Problem.goal
          ~time_bound:p.Perf.Problem.time_bound
          ~reward_bound:p.Perf.Problem.reward_bound ~samples:20_000
      in
      (* The normal-approximation interval degenerates when every sample
         hits (p near 0 or 1); allow a small absolute slack there. *)
      let ok =
        Sim.Estimate.contains iv reference
        || Float.abs (reference -. iv.Sim.Estimate.mean) <= 5e-4
      in
      if not ok then
        QCheck2.Test.fail_reportf
          "sericola %.6f outside MC %.6f +- %.6f (seed %d)" reference
          iv.Sim.Estimate.mean iv.Sim.Estimate.half_width seed
      else true)

(* Pr{Y_t <= r, X_t in goal} is monotone in r, and — because goal states
   are absorbing with zero reward in the Theorem 1 normal form — also in
   t.  Exercises band crossings in the Sericola recursion. *)
let prop_sericola_monotone =
  QCheck2.Test.make ~count:25 ~name:"sericola monotone in r and t"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let value ~t ~r =
        Perf.Sericola.solve ~epsilon:1e-11
          (Perf.Problem.make p.Perf.Problem.mrm ~init:p.Perf.Problem.init
             ~goal:p.Perf.Problem.goal ~time_bound:t ~reward_bound:r)
      in
      let t = p.Perf.Problem.time_bound and r = p.Perf.Problem.reward_bound in
      let base = value ~t ~r in
      let more_budget = value ~t ~r:(r *. 1.5) in
      let more_time = value ~t:(t *. 1.5) ~r in
      if more_budget < base -. 1e-9 then
        QCheck2.Test.fail_reportf "not monotone in r: %.9f -> %.9f (seed %d)"
          base more_budget seed
      else if more_time < base -. 1e-9 then
        QCheck2.Test.fail_reportf "not monotone in t: %.9f -> %.9f (seed %d)"
          base more_time seed
      else true)

(* Sericola's telemetry reports the Poisson mass left out by the series
   truncation; it must honour the requested a-priori bound, and the
   recorder must not perturb the computed value. *)
let prop_achieved_epsilon =
  QCheck2.Test.make ~count:25
    ~name:"sericola telemetry: achieved epsilon honours the request"
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 4 10))
    (fun (seed, exponent) ->
      let epsilon = Float.pow 10.0 (-.float_of_int exponent) in
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let telemetry = Telemetry.create () in
      let with_tel = Perf.Sericola.solve ~epsilon ~telemetry p in
      let without = Perf.Sericola.solve ~epsilon p in
      if with_tel <> without then
        QCheck2.Test.fail_reportf
          "telemetry perturbed the value: %.17g vs %.17g (seed %d)" with_tel
          without seed
      else
        match Telemetry.gauge telemetry "sericola.achieved_epsilon" with
        | None ->
          (* Degenerate bound: the solve short-circuited to transient
             analysis and the truncation gauge does not apply. *)
          Perf.Problem.reward_trivially_satisfied p
          || QCheck2.Test.fail_reportf
               "no achieved_epsilon on a non-degenerate problem (seed %d)"
               seed
        | Some achieved ->
          if achieved <= epsilon *. (1.0 +. 1e-6) +. 1e-15 then true
          else
            QCheck2.Test.fail_reportf
              "achieved epsilon %.3g exceeds requested %.3g (seed %d)"
              achieved epsilon seed)

(* Differential battery with knob-derived tolerances: each approximate
   engine must sit within the error its own convergence knob predicts of
   the a-priori-bounded reference.  Erlang-k errs like 1/sqrt(k); the
   discretisation is first order in d with constant ~ the uniformisation
   rate. *)
let prop_knob_derived_tolerances =
  QCheck2.Test.make ~count:25
    ~name:"engine error bounded by its convergence knob"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let reference = Perf.Sericola.solve ~epsilon:1e-12 p in
      let phases = 256 in
      let erlang = Perf.Erlang_approx.solve ~phases p in
      let erlang_tol = 1.0 /. Float.sqrt (float_of_int phases) in
      if Float.abs (erlang -. reference) > erlang_tol then
        QCheck2.Test.fail_reportf
          "erlang k=%d: %.8f vs %.8f exceeds 1/sqrt(k) = %.4f (seed %d)"
          phases erlang reference erlang_tol seed
      else begin
        let limit = Perf.Discretization.max_stable_step p in
        let d = ref (1.0 /. 16.0) in
        while !d > limit || !d > 1.0 /. 256.0 do
          d := !d /. 2.0
        done;
        let disc = Perf.Discretization.solve ~step:!d p in
        let rate =
          Markov.Ctmc.max_exit_rate (Markov.Mrm.ctmc p.Perf.Problem.mrm)
        in
        let disc_tol =
          10.0 *. Float.max 1.0 rate *. !d *. p.Perf.Problem.time_bound
        in
        if Float.abs (disc -. reference) > disc_tol then
          QCheck2.Test.fail_reportf
            "discretise d=%g: %.8f vs %.8f exceeds %g (seed %d)" !d disc
            reference disc_tol seed
        else true
      end)

(* On dualizable models, the P2 recipe (duality + transient) and the P3
   engines with a vacuously large time bound must agree. *)
let prop_duality_vs_sericola =
  QCheck2.Test.make ~count:15 ~name:"P2 duality agrees with Sericola"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          { Models.Random_mrm.default with
            Models.Random_mrm.max_reward = 3 }
      in
      let m = p.Perf.Problem.mrm in
      QCheck2.assume (Markov.Duality.is_dualizable m);
      let r = p.Perf.Problem.reward_bound in
      let via_dual =
        Markov.Transient.reachability ~epsilon:1e-12
          (Markov.Mrm.ctmc (Markov.Duality.dual m))
          ~init:p.Perf.Problem.init ~goal:p.Perf.Problem.goal ~t:r
      in
      (* Dualizable integral rewards mean transient states earn at rate
         >= 1, so a qualifying goal hit happens by time r and the value
         is constant for t > r: t = r + 1 makes the time bound vacuous. *)
      let via_sericola =
        Perf.Sericola.solve ~epsilon:1e-12
          (Perf.Problem.make m ~init:p.Perf.Problem.init
             ~goal:p.Perf.Problem.goal ~time_bound:(r +. 1.0) ~reward_bound:r)
      in
      if Float.abs (via_dual -. via_sericola) > 1e-5 then
        QCheck2.Test.fail_reportf "dual %.8f vs sericola %.8f (seed %d)"
          via_dual via_sericola seed
      else true)

(* Allocation canary for the Bigarray layout overhaul: the transient
   recursions reuse caller-owned scratch, so a full case-study solve
   stays within a fixed minor-heap budget.  The boxed-era implementation
   allocated ~36M minor words for the Sericola solve below (~70x the
   budget); a regression back to boxed inner loops trips this long before
   it would show in wall-clock noise.  Budgets are ~3x the measured
   steady-state cost, far above runtime jitter and far below the boxed
   numbers. *)
let test_allocation_budget () =
  let m = Models.Adhoc.mrm () in
  let l = Models.Adhoc.labeling () in
  let idle = Markov.Labeling.sat l "call_idle" in
  let doze = Markov.Labeling.sat l "doze" in
  let phi = Array.mapi (fun i a -> a || doze.(i)) idle in
  let psi = Markov.Labeling.sat l "call_initiated" in
  let red = Perf.Reduced.reduce m ~phi ~psi in
  let init = Linalg.Vec.unit 9 Models.Adhoc.initial_state in
  let p = Perf.Reduced.problem red ~init ~time_bound:24.0 ~reward_bound:600.0 in
  let minor f =
    ignore (f ());
    let before = Gc.minor_words () in
    ignore (f ());
    Gc.minor_words () -. before
  in
  let check name budget f =
    let words = minor f in
    if words > budget then
      Alcotest.failf "%s allocated %.0f minor words (budget %.0f)" name words
        budget
  in
  check "sericola solve" 1_600_000.0 (fun () ->
      Perf.Sericola.solve ~epsilon:1e-9 p);
  check "discretisation solve" 250_000.0 (fun () ->
      Perf.Discretization.solve ~step:(1.0 /. 64.0) p);
  check "erlang solve" 400_000.0 (fun () ->
      Perf.Erlang_approx.solve ~phases:256 p)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "perf",
    [ Alcotest.test_case "problem validation" `Quick test_problem_validation;
      Alcotest.test_case "Theorem 1 reduction (case study)" `Quick
        test_reduced_case_study;
      Alcotest.test_case "single-jump closed form" `Quick
        test_single_jump_closed_form;
      Alcotest.test_case "joint matrix closed form" `Quick
        test_joint_matrix_closed_form;
      Alcotest.test_case "matrix vs vector solver" `Quick test_matrix_vs_vector;
      Alcotest.test_case "erlang expansion structure" `Quick
        test_erlang_expansion_structure;
      Alcotest.test_case "erlang from below" `Quick
        test_erlang_converges_from_below;
      Alcotest.test_case "discretisation validation" `Quick
        test_discretization_validation;
      Alcotest.test_case "discretisation error halves" `Quick
        test_discretization_error_halves;
      Alcotest.test_case "engine dispatch" `Quick test_engine_dispatch;
      Alcotest.test_case "until probabilities per state" `Quick
        test_until_probabilities_via;
      Alcotest.test_case "solve_many distribution curve" `Quick
        test_solve_many;
      Alcotest.test_case "allocation budgets" `Quick test_allocation_budget;
      q prop_engines_agree;
      q prop_achieved_epsilon;
      q prop_knob_derived_tolerances;
      q prop_sericola_vs_simulation;
      q prop_sericola_monotone;
      q prop_duality_vs_sericola ] )
