(* Golden oracle for the case study's Q3.

   The model built from the published Table 1 evaluates

     Q3 = Pr{ (call_idle | doze) U[t<=24][r<=600] call_initiated }
        = 0.49699673

   from the initial state — the consensus of four independent methods
   (Sericola's occupation-time algorithm, the Tijms-Veldman
   discretisation, the pseudo-Erlang expansion, and Monte-Carlo
   simulation; see bench/main.ml and EXPERIMENTS.md for the relation to
   the paper's printed 0.49540399).  This suite pins that consensus so a
   regression in any engine's numerics — not just a crash — fails the
   build, with per-method tolerances derived from each method's own
   convergence knob. *)

let oracle = 0.49699673

let q3_problem () =
  let m = Models.Adhoc.mrm () in
  let l = Models.Adhoc.labeling () in
  let idle = Markov.Labeling.sat l "call_idle" in
  let doze = Markov.Labeling.sat l "doze" in
  let phi = Array.mapi (fun i a -> a || doze.(i)) idle in
  let psi = Markov.Labeling.sat l "call_initiated" in
  let red = Perf.Reduced.reduce m ~phi ~psi in
  let init = Linalg.Vec.unit 9 Models.Adhoc.initial_state in
  Perf.Reduced.problem red ~init ~time_bound:24.0 ~reward_bound:600.0

let check_within what ~tol expected actual =
  if Float.abs (actual -. expected) > tol then
    Alcotest.failf "%s: |%.10f - %.10f| = %.3g > %g" what actual expected
      (Float.abs (actual -. expected))
      tol

(* The method with the a-priori error bound hits the oracle directly. *)
let test_sericola () =
  let p = q3_problem () in
  let v = Perf.Sericola.solve ~epsilon:1e-10 p in
  check_within "sericola eps=1e-10" ~tol:1e-6 oracle v

(* The discretisation error is first order in d, so one Richardson
   extrapolation step — 2 v(d/2) - v(d) — cancels it; the extrapolated
   pair (1/32, 1/64) is as accurate as a far finer plain grid. *)
let test_discretisation_richardson () =
  let v32 = Perf.Discretization.solve ~step:(1.0 /. 32.0) (q3_problem ()) in
  let v64 = Perf.Discretization.solve ~step:(1.0 /. 64.0) (q3_problem ()) in
  let extrapolated = (2.0 *. v64) -. v32 in
  check_within "richardson(1/32, 1/64)" ~tol:5e-5 oracle extrapolated;
  (* Sanity on the inputs: both raw values are within their own
     first-order error of the oracle, and halving d halves the error. *)
  let e32 = Float.abs (v32 -. oracle) and e64 = Float.abs (v64 -. oracle) in
  if e64 >= e32 then
    Alcotest.failf "discretisation error did not shrink: %g -> %g" e32 e64

(* The pseudo-Erlang approximation converges from below (paper,
   Section 5.2): increasing the phase count increases the value, and it
   never overshoots. *)
let test_erlang_from_below () =
  let v64 = Perf.Erlang_approx.solve ~epsilon:1e-10 ~phases:64 (q3_problem ()) in
  let v256 =
    Perf.Erlang_approx.solve ~epsilon:1e-10 ~phases:256 (q3_problem ())
  in
  if not (v64 < v256) then
    Alcotest.failf "not monotone in phases: k=64 %.8f >= k=256 %.8f" v64 v256;
  if not (v256 < oracle) then
    Alcotest.failf "erlang overshoots the oracle: %.8f >= %.8f" v256 oracle;
  (* The Erlang-k error decays like 1/sqrt(k); k = 256 is past the
     paper's ~250 phases for three-digit accuracy. *)
  check_within "erlang k=256" ~tol:1e-3 oracle v256

(* End to end through the checker: the full CSRL query (the cram test
   pins the CLI rendering of the same number). *)
let test_checker_end_to_end () =
  let ctx =
    Checker.make ~epsilon:1e-9 (Models.Adhoc.mrm ()) (Models.Adhoc.labeling ())
  in
  let query =
    Logic.Parser.query
      "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )"
  in
  match Checker.eval_query ctx query with
  | Checker.Numeric probs ->
    check_within "checker P=?" ~tol:1e-6 oracle
      probs.{Models.Adhoc.initial_state}
  | _ -> Alcotest.fail "expected a numeric verdict"

let suite =
  ( "oracle",
    [ Alcotest.test_case "sericola hits the oracle" `Quick test_sericola;
      Alcotest.test_case "discretisation Richardson-extrapolates to it"
        `Quick test_discretisation_richardson;
      Alcotest.test_case "erlang converges to it from below" `Quick
        test_erlang_from_below;
      Alcotest.test_case "checker end to end" `Quick test_checker_end_to_end ] )
