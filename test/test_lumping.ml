(* Tests for the lumpability quotient. *)

let check_close ?(tol = 1e-9) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

(* A pool of [k] independent, identical machines tracked individually:
   2^k states, each machine failing with rate f and repaired (its own
   repairer) with rate r.  Labels and rewards depend only on the number
   of working machines, so the quotient must be the (k+1)-state counting
   chain. *)
let machine_pool ~k ~fail ~repair =
  let n = 1 lsl k in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  let triples = ref [] in
  for s = 0 to n - 1 do
    for machine = 0 to k - 1 do
      let bit = 1 lsl machine in
      if s land bit <> 0 then triples := (s, s lxor bit, fail) :: !triples
      else triples := (s, s lxor bit, repair) :: !triples
    done
  done;
  let rewards = Array.init n (fun s -> float_of_int (popcount s)) in
  let mrm = Markov.Mrm.of_transitions ~n !triples ~rewards in
  let labeling =
    Markov.Labeling.make ~n
      [ ("all_up", [ n - 1 ]);
        ("none_up", [ 0 ]);
        ( "quorum",
          List.filter (fun s -> popcount s * 2 > k) (List.init n Fun.id) ) ]
  in
  (mrm, labeling, popcount)

let test_pool_collapses () =
  let k = 4 in
  let mrm, labeling, popcount = machine_pool ~k ~fail:0.1 ~repair:2.0 in
  let l = Markov.Lumping.compute mrm labeling in
  Alcotest.(check int) "counting abstraction" (k + 1) l.Markov.Lumping.n_blocks;
  (* Blocks are exactly the popcount classes. *)
  for s = 0 to (1 lsl k) - 1 do
    for s' = 0 to (1 lsl k) - 1 do
      let same_block =
        l.Markov.Lumping.block_of_state.(s) = l.Markov.Lumping.block_of_state.(s')
      in
      Alcotest.(check bool)
        (Printf.sprintf "states %d,%d" s s')
        (popcount s = popcount s') same_block
    done
  done;
  (* Quotient rates: from count c, failures pool to c * fail. *)
  let block_of_count c =
    let s = (1 lsl c) - 1 in
    l.Markov.Lumping.block_of_state.(s)
  in
  let q = Markov.Mrm.ctmc l.Markov.Lumping.quotient in
  check_close "pooled failure rate" (3.0 *. 0.1)
    (Markov.Ctmc.rate q (block_of_count 3) (block_of_count 2));
  check_close "pooled repair rate" (2.0 *. 2.0)
    (Markov.Ctmc.rate q (block_of_count 2) (block_of_count 3));
  check_close "quotient reward" 3.0
    (Markov.Mrm.reward l.Markov.Lumping.quotient (block_of_count 3))

let test_transient_preserved () =
  let mrm, labeling, _ = machine_pool ~k:3 ~fail:0.2 ~repair:1.5 in
  let l = Markov.Lumping.compute mrm labeling in
  let n = Markov.Mrm.n_states mrm in
  let init = Linalg.Vec.unit n (n - 1) in
  let t = 0.8 in
  let full = Markov.Transient.distribution (Markov.Mrm.ctmc mrm) ~init ~t in
  let quotient_pi =
    Markov.Transient.distribution
      (Markov.Mrm.ctmc l.Markov.Lumping.quotient)
      ~init:(Markov.Lumping.lift l init) ~t
  in
  let aggregated = Markov.Lumping.lift l full in
  Array.iteri
    (fun b expected -> check_close ~tol:1e-10 (Printf.sprintf "block %d" b)
        expected quotient_pi.{b})
    (Linalg.Vec.to_array aggregated)

let test_labels_split () =
  (* Identical dynamics but distinguishing labels must keep states
     apart. *)
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ]
      ~rewards:[| 1.0; 1.0 |]
  in
  let labeling = Markov.Labeling.make ~n:2 [ ("special", [ 0 ]) ] in
  let l = Markov.Lumping.compute mrm labeling in
  Alcotest.(check int) "labels split" 2 l.Markov.Lumping.n_blocks;
  (* Without the label they merge. *)
  let l = Markov.Lumping.compute mrm (Markov.Labeling.empty ~n:2) in
  Alcotest.(check int) "merge" 1 l.Markov.Lumping.n_blocks

let test_rewards_split () =
  let mrm =
    Markov.Mrm.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ]
      ~rewards:[| 1.0; 2.0 |]
  in
  let l = Markov.Lumping.compute mrm (Markov.Labeling.empty ~n:2) in
  Alcotest.(check int) "rewards split" 2 l.Markov.Lumping.n_blocks

let test_rates_split () =
  (* Same labels/rewards but different dynamics: a fast and a slow state
     must not merge. *)
  let mrm =
    Markov.Mrm.of_transitions ~n:3
      [ (0, 2, 1.0); (1, 2, 5.0); (2, 0, 1.0) ]
      ~rewards:[| 1.0; 1.0; 0.0 |]
  in
  let l = Markov.Lumping.compute mrm (Markov.Labeling.empty ~n:3) in
  Alcotest.(check bool) "different exit rates split" true
    (l.Markov.Lumping.block_of_state.(0) <> l.Markov.Lumping.block_of_state.(1))

let test_lift_lower () =
  let mrm, labeling, _ = machine_pool ~k:2 ~fail:0.3 ~repair:1.0 in
  let l = Markov.Lumping.compute mrm labeling in
  let v = [| 0.1; 0.2; 0.3; 0.4 |] in
  let lifted = Markov.Lumping.lift l (Linalg.Vec.of_array v) in
  check_close "mass preserved" (Linalg.Vec.sum (Linalg.Vec.of_array v)) (Linalg.Vec.sum lifted);
  let w = Array.init l.Markov.Lumping.n_blocks float_of_int in
  let lowered = Markov.Lumping.lower l (Linalg.Vec.of_array w) in
  Array.iteri
    (fun s b -> check_close "lower" w.(b) lowered.{s})
    l.Markov.Lumping.block_of_state

(* The property that matters: CSRL answers computed on the quotient equal
   the answers on the full model. *)
let test_checking_commutes () =
  let mrm, labeling, _ = machine_pool ~k:3 ~fail:0.25 ~repair:2.0 in
  let l = Markov.Lumping.compute mrm labeling in
  let full_ctx = Checker.make ~epsilon:1e-11 mrm labeling in
  let quotient_ctx =
    Checker.make ~epsilon:1e-11 l.Markov.Lumping.quotient
      l.Markov.Lumping.labeling
  in
  List.iter
    (fun text ->
      let q = Logic.Parser.query text in
      match Checker.eval_query full_ctx q, Checker.eval_query quotient_ctx q with
      | Checker.Numeric full, Checker.Numeric quotient ->
        let lowered = Markov.Lumping.lower l quotient in
        Array.iteri
          (fun s expected ->
            check_close ~tol:1e-8
              (Printf.sprintf "%s at %d" text s)
              expected full.{s})
          (Linalg.Vec.to_array lowered)
      | _ -> Alcotest.fail "expected numeric")
    [ "P=? ( F[t<=2] none_up )";
      "P=? ( quorum U[t<=4][r<=6] none_up )";
      "S=? ( all_up )";
      "R=? ( C[t<=3] )" ]

let suite =
  ( "lumping",
    [ Alcotest.test_case "pool collapses to counting" `Quick
        test_pool_collapses;
      Alcotest.test_case "transient preserved" `Quick test_transient_preserved;
      Alcotest.test_case "labels split" `Quick test_labels_split;
      Alcotest.test_case "rewards split" `Quick test_rewards_split;
      Alcotest.test_case "rates split" `Quick test_rates_split;
      Alcotest.test_case "lift and lower" `Quick test_lift_lower;
      Alcotest.test_case "checking commutes" `Quick test_checking_commutes ] )
