(* Tests for lib/robust: the interval-valued model type, the envelope
   solver's containment guarantee (a Monte-Carlo perturbation oracle:
   no concrete model of the uncertainty set may answer outside the
   envelope), zero-width bit-identity against the precise engines, and
   the qcheck nesting law (wider intervals give wider envelopes). *)

let bits = Int64.bits_of_float

let vec_states v = List.init (Linalg.Vec.length v) (fun s -> s)

(* ------------------------------------------------------------------ *)
(* Model construction and validation.                                  *)

let imrm_validation () =
  let reject message f =
    match f () with
    | _ -> Alcotest.failf "accepted: %s" message
    | exception Invalid_argument _ -> ()
  in
  reject "lo > hi" (fun () ->
      Robust.Imrm.make ~n:2
        ~transitions:[ (0, 1, 2.0, 1.0) ]
        ~rewards:[| (0.0, 0.0); (0.0, 0.0) |]);
  reject "negative rate" (fun () ->
      Robust.Imrm.make ~n:2
        ~transitions:[ (0, 1, -1.0, 1.0) ]
        ~rewards:[| (0.0, 0.0); (0.0, 0.0) |]);
  reject "self-loop" (fun () ->
      Robust.Imrm.make ~n:2
        ~transitions:[ (0, 0, 1.0, 1.0) ]
        ~rewards:[| (0.0, 0.0); (0.0, 0.0) |]);
  reject "duplicate transition" (fun () ->
      Robust.Imrm.make ~n:2
        ~transitions:[ (0, 1, 1.0, 1.0); (0, 1, 2.0, 3.0) ]
        ~rewards:[| (0.0, 0.0); (0.0, 0.0) |]);
  reject "reward interval inverted" (fun () ->
      Robust.Imrm.make ~n:1 ~transitions:[] ~rewards:[| (2.0, 1.0) |]);
  reject "drift out of range" (fun () ->
      Robust.Imrm.of_mrm ~rate_drift:1.0 (Models.Adhoc.mrm ()));
  (* Impulse rewards are not representable. *)
  let impulse_model =
    Models.Random_mrm.generate ~seed:7L Models.Random_mrm.with_impulses
  in
  Alcotest.(check bool) "generator produced impulses" true
    (Markov.Mrm.has_impulses impulse_model);
  reject "impulse rewards" (fun () -> Robust.Imrm.point impulse_model);
  (* hi = 0 transitions are dropped rather than stored. *)
  let m =
    Robust.Imrm.make ~n:3
      ~transitions:[ (0, 1, 1.0, 2.0); (0, 2, 0.0, 0.0) ]
      ~rewards:[| (0.0, 1.0); (0.0, 0.0); (0.0, 0.0) |]
  in
  Alcotest.(check int) "zero transition dropped" 1
    (Robust.Imrm.n_transitions m);
  Alcotest.(check (float 0.0)) "exit_hi" 2.0 (Robust.Imrm.exit_hi m 0);
  Alcotest.(check bool) "not a point (reward width)" false
    (Robust.Imrm.is_point m)

let of_mrm_roundtrip () =
  let mrm = Models.Adhoc.mrm () in
  let point = Robust.Imrm.point mrm in
  Alcotest.(check bool) "point is a point" true (Robust.Imrm.is_point point);
  Alcotest.(check (float 0.0)) "point width" 0.0
    (Robust.Imrm.max_width point);
  let drifted = Robust.Imrm.of_mrm ~rate_drift:0.1 mrm in
  Alcotest.(check bool) "drifted is not a point" false
    (Robust.Imrm.is_point drifted);
  (* The midpoint of a symmetric drift is the source model's rates. *)
  let mid = Robust.Imrm.midpoint drifted in
  let rates m = Markov.Ctmc.rates (Markov.Mrm.ctmc m) in
  Linalg.Csr.iter (rates mid) (fun s d v ->
      let reference = Linalg.Csr.get (rates mrm) s d in
      if abs_float (v -. reference) > 1e-12 *. reference then
        Alcotest.failf "midpoint rate %d->%d drifted: %g vs %g" s d v
          reference);
  (* Sampling stays inside the intervals. *)
  let rng = Random.State.make [| 42 |] in
  let sampled = Robust.Imrm.sample rng drifted in
  Linalg.Csr.iter (rates sampled) (fun s d v ->
      let reference = Linalg.Csr.get (rates mrm) s d in
      if v < 0.9 *. reference -. 1e-12 || v > 1.1 *. reference +. 1e-12 then
        Alcotest.failf "sampled rate %d->%d outside drift: %g vs %g" s d v
          reference)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo perturbation oracle: for >= 50 concrete models sampled
   from the uncertainty set, the precise answer lies inside the
   envelope.  This is the containment guarantee end to end — sampling,
   precise engines, robust context — not just the VI kernel.           *)

let mc_containment ~name ~samples ~drift mrm labeling query_text =
  let imrm = Robust.Imrm.of_mrm ~rate_drift:drift mrm in
  let robust_ctx = Checker.make_robust ~epsilon:1e-9 imrm labeling in
  let query = Logic.Parser.query query_text in
  let env =
    match Checker.eval_query robust_ctx query with
    | Checker.Interval env -> env
    | _ -> Alcotest.fail "expected an interval verdict"
  in
  let rng = Random.State.make [| 0xbeef |] in
  for i = 1 to samples do
    let concrete = Robust.Imrm.sample rng imrm in
    let ctx = Checker.make ~epsilon:1e-9 concrete labeling in
    match Checker.eval_query ctx query with
    | Checker.Numeric v ->
      List.iter
        (fun s ->
          let lo = env.Robust.Envelope.lo.{s}
          and hi = env.Robust.Envelope.hi.{s} in
          if not (lo <= v.{s} && v.{s} <= hi) then
            Alcotest.failf
              "%s: sample %d state %d: precise %.17g outside [%.17g, %.17g]"
              name i s v.{s} lo hi)
        (vec_states v)
    | _ -> Alcotest.fail "expected a numeric verdict"
  done

let mc_oracle_time () =
  let mrm = Models.Multiprocessor.mrm Models.Multiprocessor.default in
  let labeling = Models.Multiprocessor.labeling Models.Multiprocessor.default in
  mc_containment ~name:"multiprocessor F[t<=2] down" ~samples:30 ~drift:0.15
    mrm labeling "P=? ( F[t<=2] down )"

let mc_oracle_time_reward () =
  mc_containment ~name:"adhoc U[t][r]" ~samples:30 ~drift:0.1
    (Models.Adhoc.mrm ()) (Models.Adhoc.labeling ())
    "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )"

(* ------------------------------------------------------------------ *)
(* Zero-width delegation: a robust context over [Imrm.point m] answers
   bit for bit what the precise context answers.                       *)

let zero_width_bit_identity () =
  let mrm = Models.Adhoc.mrm () and labeling = Models.Adhoc.labeling () in
  let precise = Checker.make ~epsilon:1e-9 mrm labeling in
  let robust =
    Checker.make_robust ~epsilon:1e-9 (Robust.Imrm.point mrm) labeling
  in
  List.iter
    (fun text ->
      let query = Logic.Parser.query text in
      match (Checker.eval_query precise query, Checker.eval_query robust query)
      with
      | Checker.Numeric v, Checker.Interval env ->
        List.iter
          (fun s ->
            if
              bits env.Robust.Envelope.lo.{s} <> bits v.{s}
              || bits env.Robust.Envelope.hi.{s} <> bits v.{s}
            then
              Alcotest.failf "%s state %d: [%.17g, %.17g] vs precise %.17g"
                text s env.Robust.Envelope.lo.{s} env.Robust.Envelope.hi.{s}
                v.{s})
          (vec_states v)
      | Checker.Boolean mask, Checker.Three_valued tris ->
        Array.iteri
          (fun s b ->
            if tris.(s) <> Checker.tri_of_bool b then
              Alcotest.failf "%s state %d: %s vs precise %b" text s
                (Checker.tri_to_string tris.(s))
                b)
          mask
      | _ -> Alcotest.fail "verdict kinds diverged")
    [ "P=? ( F[t<=2] doze )";
      "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )";
      "P>=0.3 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )";
      "P<=0.9 ( F[t<=10] call_active )" ]

(* The memoised robust path returns bit-identical fresh copies. *)
let robust_memo_identity () =
  let mrm = Models.Adhoc.mrm () and labeling = Models.Adhoc.labeling () in
  let imrm = Robust.Imrm.of_mrm ~rate_drift:0.1 mrm in
  let ctx = Checker.make_robust ~epsilon:1e-9 imrm labeling in
  let memo = Checker.create_memo () in
  let query = Logic.Parser.query "P=? ( F[t<=2] doze )" in
  let solve () =
    match Checker.eval_query ~memo ctx query with
    | Checker.Interval env -> env
    | _ -> Alcotest.fail "expected an interval verdict"
  in
  let cold = solve () in
  let warm = solve () in
  List.iter
    (fun s ->
      Alcotest.(check bool) "warm lo identical" true
        (bits cold.Robust.Envelope.lo.{s} = bits warm.Robust.Envelope.lo.{s});
      Alcotest.(check bool) "warm hi identical" true
        (bits cold.Robust.Envelope.hi.{s} = bits warm.Robust.Envelope.hi.{s}))
    (vec_states cold.Robust.Envelope.lo);
  let counters = List.assoc "envelope" (Checker.memo_counters memo) in
  Alcotest.(check int) "warm lookup hit" 1 counters.Perf.Batch.hits

(* Three-valued threshold verdicts against an envelope. *)
let tri_of_bounds_cases () =
  let check name expected got =
    Alcotest.(check string) name
      (Checker.tri_to_string expected)
      (Checker.tri_to_string got)
  in
  check "whole envelope above" Checker.Holds
    (Checker.tri_of_bounds Logic.Ast.Ge 0.5 ~lo:0.6 ~hi:0.9);
  check "whole envelope below" Checker.Fails
    (Checker.tri_of_bounds Logic.Ast.Ge 0.5 ~lo:0.1 ~hi:0.4);
  check "straddles the bound" Checker.Unknown
    (Checker.tri_of_bounds Logic.Ast.Ge 0.5 ~lo:0.4 ~hi:0.6);
  check "Le flips the roles" Checker.Holds
    (Checker.tri_of_bounds Logic.Ast.Le 0.5 ~lo:0.1 ~hi:0.4);
  check "strict bound at the endpoint" Checker.Fails
    (Checker.tri_of_bounds Logic.Ast.Gt 0.5 ~lo:0.5 ~hi:0.5);
  (* Zero width never answers Unknown and agrees with compare_holds. *)
  List.iter
    (fun cmp ->
      List.iter
        (fun p ->
          List.iter
            (fun v ->
              let expected =
                Checker.tri_of_bool (Logic.Ast.compare_holds cmp p v)
              in
              check "zero width = compare_holds" expected
                (Checker.tri_of_bounds cmp p ~lo:v ~hi:v))
            [ 0.0; 0.25; 0.5; 1.0 ])
        [ 0.25; 0.5 ])
    [ Logic.Ast.Lt; Logic.Ast.Le; Logic.Ast.Gt; Logic.Ast.Ge ]

(* ------------------------------------------------------------------ *)
(* Interval-model JSON.                                                *)

let imrm_io () =
  let doc =
    Robust.Imrm_io.parse
      {|{"states": 3,
         "transitions": [[0, 1, 1.0, 2.0], [1, 2, 0.5], [2, 0, 1.0, 1.0]],
         "rewards": [[0.0, 1.0], 2.0, 0.0],
         "labels": {"up": [0, 1], "down": [2]},
         "init": 1}|}
  in
  Alcotest.(check int) "states" 3 (Robust.Imrm.n_states doc.Robust.Imrm_io.imrm);
  Alcotest.(check int) "transitions" 3
    (Robust.Imrm.n_transitions doc.Robust.Imrm_io.imrm);
  Alcotest.(check (float 0.0)) "reward hi" 2.0
    (Robust.Imrm.reward_hi doc.Robust.Imrm_io.imrm 1);
  Alcotest.(check (float 0.0)) "init mass on 1" 1.0
    doc.Robust.Imrm_io.init.{1};
  Alcotest.(check bool) "label up holds in 0" true
    (Markov.Labeling.sat doc.Robust.Imrm_io.labeling "up").(0);
  let rejects text =
    match Robust.Imrm_io.parse text with
    | _ -> Alcotest.failf "accepted %s" text
    | exception Robust.Imrm_io.Format_error _ -> ()
  in
  rejects {|not json|};
  rejects {|{"transitions": []}|};
  rejects {|{"states": 2, "transitions": [[0, 5, 1.0]], "rewards": [0, 0]}|};
  rejects {|{"states": 2, "transitions": [[0, 1, 2.0, 1.0]], "rewards": [0, 0]}|};
  rejects {|{"states": 2, "transitions": [], "rewards": [0]}|};
  rejects
    {|{"states": 2, "transitions": [], "rewards": [0, 0], "init": [0.5, 0.1]}|}

(* ------------------------------------------------------------------ *)
(* Nesting: wider uncertainty gives wider (never narrower) envelopes.
   A shared uniformisation rate makes the discretisations comparable,
   so the inclusion holds exactly up to rounding.                      *)

let gen_seed = QCheck2.Gen.int_range 0 10_000

let envelopes_nest =
  QCheck2.Test.make ~count:30
    ~name:"robust: wider drift gives nested envelopes"
    QCheck2.Gen.(
      quad gen_seed
        (float_range 0.01 0.2)
        (float_range 0.2 1.0)
        (oneofl [ None; Some 1.0; Some 4.0 ]))
    (fun (seed, d1, scale, reward_bound) ->
      let d2 = d1 +. (0.25 *. scale) in
      let mrm, labeling =
        Models.Random_mrm.generate_labeled ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let time_bound = 0.5 +. scale in
      let narrow = Robust.Imrm.of_mrm ~rate_drift:d1 mrm in
      let wide = Robust.Imrm.of_mrm ~rate_drift:d2 mrm in
      let rate = Robust.Imrm.max_exit_hi wide in
      if rate <= 0.0 then true (* no transitions: nothing to nest *)
      else begin
        let phi = Markov.Labeling.sat labeling "a"
        and psi = Markov.Labeling.sat labeling "b" in
        let solve imrm =
          Robust.Envelope.until ~rate ~epsilon:1e-9 imrm ~phi_must:phi
            ~phi_may:phi ~psi_must:psi ~psi_may:psi ~time_bound ~reward_bound
        in
        let inner = solve narrow and outer = solve wide in
        List.iter
          (fun s ->
            let open Robust.Envelope in
            if inner.lo.{s} < outer.lo.{s} -. 1e-12 then
              QCheck2.Test.fail_reportf
                "state %d: narrow lo %.17g below wide lo %.17g" s inner.lo.{s}
                outer.lo.{s};
            if inner.hi.{s} > outer.hi.{s} +. 1e-12 then
              QCheck2.Test.fail_reportf
                "state %d: narrow hi %.17g above wide hi %.17g" s inner.hi.{s}
                outer.hi.{s})
          (vec_states inner.Robust.Envelope.lo);
        true
      end)

(* The sampled-model containment law on random models: any concrete
   realisation's precise transient answer lies inside the envelope. *)
let sampled_containment =
  QCheck2.Test.make ~count:25
    ~name:"robust: sampled concrete models stay inside the envelope"
    QCheck2.Gen.(triple gen_seed (float_range 0.02 0.25) (float_range 0.3 2.0))
    (fun (seed, drift, time_bound) ->
      let mrm, labeling =
        Models.Random_mrm.generate_labeled ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let imrm = Robust.Imrm.of_mrm ~rate_drift:drift mrm in
      let phi = Markov.Labeling.sat labeling "a"
      and psi = Markov.Labeling.sat labeling "b" in
      let env =
        Robust.Envelope.until ~epsilon:1e-9 imrm ~phi_must:phi ~phi_may:phi
          ~psi_must:psi ~psi_may:psi ~time_bound ~reward_bound:None
      in
      let rng = Random.State.make [| seed; 17 |] in
      let ok = ref true in
      for _ = 1 to 3 do
        let concrete = Robust.Imrm.sample rng imrm in
        let ctx = Checker.make ~epsilon:1e-9 concrete labeling in
        let v =
          Checker.path_probabilities ctx
            (Logic.Ast.Until
               ( Numerics.Time_interval.upto time_bound,
                 Numerics.Time_interval.unbounded, Logic.Ast.Ap "a",
                 Logic.Ast.Ap "b" ))
        in
        List.iter
          (fun s ->
            if
              not
                (env.Robust.Envelope.lo.{s} <= v.{s}
                && v.{s} <= env.Robust.Envelope.hi.{s})
            then begin
              ok := false;
              QCheck2.Test.fail_reportf
                "state %d: precise %.17g outside [%.17g, %.17g]" s v.{s}
                env.Robust.Envelope.lo.{s} env.Robust.Envelope.hi.{s}
            end)
          (vec_states v)
      done;
      !ok)

let suite =
  ( "robust",
    [ Alcotest.test_case "imrm validation" `Quick imrm_validation;
      Alcotest.test_case "of_mrm/point/sample roundtrip" `Quick
        of_mrm_roundtrip;
      Alcotest.test_case "MC oracle: time-bounded" `Slow mc_oracle_time;
      Alcotest.test_case "MC oracle: time- and reward-bounded" `Slow
        mc_oracle_time_reward;
      Alcotest.test_case "zero width is bit-identical to precise" `Quick
        zero_width_bit_identity;
      Alcotest.test_case "memoised envelopes are bit-identical" `Quick
        robust_memo_identity;
      Alcotest.test_case "tri_of_bounds" `Quick tri_of_bounds_cases;
      Alcotest.test_case "interval-model JSON" `Quick imrm_io;
      QCheck_alcotest.to_alcotest envelopes_nest;
      QCheck_alcotest.to_alcotest sampled_containment ] )
