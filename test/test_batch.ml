(* Tests for the batched multi-query engine: the defining invariant is
   that [Batch.run] answers every query bit-identically to a sequential
   single-query [Checker.eval_query] run — with and without an
   across-queries domain pool — while the shared memo's cache counters
   stay consistent. *)

let verdict_equal a b =
  match (a, b) with
  | Checker.Boolean x, Checker.Boolean y -> x = y
  | Checker.Numeric x, Checker.Numeric y -> x = y
  | _ -> false

let pp_verdict = function
  | Checker.Boolean mask ->
    String.concat ""
      (List.map (fun b -> if b then "1" else "0") (Array.to_list mask))
  | Checker.Numeric v ->
    String.concat " "
      (List.map (Printf.sprintf "%.17g") (Array.to_list (Linalg.Vec.to_array v)))
  | Checker.Three_valued _ | Checker.Interval _ -> "<robust>"

(* A pool of well-formed CSRL queries over the propositions of
   {!Models.Random_mrm.generate_labeled}.  Reward-bounded-only untils are
   deliberately absent: on random models they may hit the [P2] duality's
   zero-reward restriction ([Checker.Unsupported]), which is orthogonal
   to what the batch engine adds.  Overlapping subformulas are the
   point — they are what the caches share. *)
let query_pool =
  [ "P=? ( a U b )";
    "P=? ( X a )";
    "P=? ( (a | b) U[t<=1] c )";
    "P=? ( (a | b) U[t<=2] c )";
    "P=? ( a U[t<=2][r<=3] b )";
    "P=? ( a U[t<=2][r<=2] b )";
    "P=? ( a U[t<=1][r<=3] b )";
    "P=? ( (a | b) U[t<=1.5][r<=2] c )";
    "P>=0.1 ( a U[t<=2][r<=3] b )";
    "P>=0.5 ( a U[t<=2][r<=3] b )";
    "P>=0.9 ( a U[t<=2][r<=3] b )";
    "P<=0.5 ( (a | b) U[t<=1] c )";
    "S=? ( b )";
    "P=? ( F[t<=1] (b & !c) )" ]

let gen_batch =
  QCheck2.Gen.(
    pair (int_range 0 10_000)
      (list_size (int_range 1 8) (oneofl query_pool)))

let check_counters what counters =
  List.iter
    (fun (name, (c : Perf.Batch.counters)) ->
      if c.Perf.Batch.lookups < 0 || c.Perf.Batch.hits < 0
         || c.Perf.Batch.misses < 0 then
        QCheck2.Test.fail_reportf "%s: cache %s has a negative counter" what
          name;
      if c.Perf.Batch.hits + c.Perf.Batch.misses <> c.Perf.Batch.lookups then
        QCheck2.Test.fail_reportf
          "%s: cache %s: hits (%d) + misses (%d) <> lookups (%d)" what name
          c.Perf.Batch.hits c.Perf.Batch.misses c.Perf.Batch.lookups)
    counters

let batch_matches_sequential =
  QCheck2.Test.make ~count:25
    ~name:"batched verdicts bit-identical to single-query runs" gen_batch
    (fun (seed, texts) ->
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let queries = List.map Logic.Parser.query texts in
      let ctx = Checker.make m labeling in
      let expected = List.map (Checker.eval_query ctx) queries in
      let check what actual =
        List.iteri
          (fun i (want, got) ->
            if not (verdict_equal want got) then
              QCheck2.Test.fail_reportf
                "%s: query %d (%s) differs:\n  sequential %s\n  batched    %s"
                what i (List.nth texts i) (pp_verdict want) (pp_verdict got))
          (List.combine expected actual)
      in
      (* Without a pool: every query on the plain sequential path. *)
      let memo = Checker.create_memo () in
      check "no pool" (Batch.run ~memo ctx queries);
      let counters = Checker.memo_counters memo in
      check_counters "no pool" counters;
      let sat_lookups =
        match List.assoc_opt "sat" counters with
        | Some c -> c.Perf.Batch.lookups
        | None -> QCheck2.Test.fail_report "no \"sat\" cache in the memo"
      in
      if sat_lookups = 0 then
        QCheck2.Test.fail_report "batch consulted no Sat-set at all";
      (* Re-running on the same memo must hit for every repeated key and
         still answer identically. *)
      check "warm memo" (Batch.run ~memo ctx queries);
      check_counters "warm memo" (Checker.memo_counters memo);
      (* Across a pool: queries dispatched over 3 domains, kernels still
         forced onto the sequential path. *)
      Parallel.Pool.with_pool ~jobs:3 (fun pool ->
          let memo = Checker.create_memo () in
          check "pool" (Batch.run ~pool ~memo ctx queries);
          check_counters "pool" (Checker.memo_counters memo));
      true)

(* The memo is an argument of [eval_query] too: a memoised single-query
   call must agree with the uncached path and must not alias its own
   cache (mutating a returned verdict must not corrupt later answers). *)
let test_memo_no_aliasing () =
  let m, labeling =
    Models.Random_mrm.generate_labeled ~seed:99L Models.Random_mrm.default
  in
  let ctx = Checker.make m labeling in
  let query = Logic.Parser.query "P=? ( a U[t<=2][r<=3] b )" in
  let memo = Checker.create_memo () in
  let expected = Checker.eval_query ctx query in
  let first = Checker.eval_query ~memo ctx query in
  (match first with
   | Checker.Numeric v -> Array.fill (Linalg.Vec.to_array v) 0 (Array.length (Linalg.Vec.to_array v)) 42.0
   | _ -> Alcotest.fail "expected a numeric verdict");
  let second = Checker.eval_query ~memo ctx query in
  if not (verdict_equal expected second) then
    Alcotest.fail "mutating a memoised verdict corrupted the cache"

(* The Fox-Glynn window cache is keyed by (q, epsilon) and must return
   the exact window a cold computation produces. *)
let test_fox_glynn_cache_identity () =
  Numerics.Fox_glynn.cache_clear ();
  let cold = Numerics.Fox_glynn.compute ~q:468.0 ~epsilon:1e-9 in
  let warm = Numerics.Fox_glynn.compute ~q:468.0 ~epsilon:1e-9 in
  if cold <> warm then Alcotest.fail "cached window differs from cold";
  let c = Numerics.Fox_glynn.cache_counters () in
  Alcotest.(check int) "lookups" 2 c.Numerics.Fox_glynn.lookups;
  Alcotest.(check int) "hits" 1 c.Numerics.Fox_glynn.hits;
  Alcotest.(check int) "misses" 1 c.Numerics.Fox_glynn.misses;
  Numerics.Fox_glynn.cache_clear ();
  let c = Numerics.Fox_glynn.cache_counters () in
  Alcotest.(check int) "cleared" 0 c.Numerics.Fox_glynn.lookups

let suite =
  ( "batch",
    [ QCheck_alcotest.to_alcotest batch_matches_sequential;
      Alcotest.test_case "memoised verdicts are fresh copies" `Quick
        test_memo_no_aliasing;
      Alcotest.test_case "fox-glynn cache identity" `Quick
        test_fox_glynn_cache_identity ] )
