(* Tests for the two-cost frontier layer: Perf.Frontier's bisection
   primitive and divide-and-conquer sweep, and Batch.Frontier's
   end-to-end runs.  The defining invariant is differential: every
   emitted staircase point must be bit-identical to a cold single-query
   [Checker.eval_query] solve of the same (t, r) bounds — with and
   without a domain pool, with and without the reduction pipeline.  On
   top of that, qcheck properties pin the monotonicity assumptions the
   sweep's brackets rely on, the staircase shape, and byte-identical
   warm-memo reruns with coherent cache counters. *)

let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* probe: the 1-point degenerate case on analytic evals.               *)

let test_probe_analytic () =
  (* eval r = 1 - exp(-r): the least r with eval r >= 1/2 is ln 2. *)
  let evaluations = ref 0 in
  let eval r = incr evaluations; 1.0 -. exp (-.r) in
  let o = Perf.Frontier.probe ~eval ~target:0.5 ~hi:10.0 ~tolerance:1e-9 in
  (match o.Perf.Frontier.value with
   | None -> Alcotest.fail "probe missed a reachable target"
   | Some r ->
     if Float.abs (r -. Float.log 2.0) > 1e-8 then
       Alcotest.failf "probe found %.17g, want ln 2 = %.17g" r (Float.log 2.0);
     if o.Perf.Frontier.achieved < 0.5 then
       Alcotest.failf "achieved %.17g below the target" o.Perf.Frontier.achieved);
  Alcotest.(check int) "evaluation counter" !evaluations
    o.Perf.Frontier.evaluations

let test_probe_unreachable () =
  let eval _ = 0.1 in
  let o = Perf.Frontier.probe ~eval ~target:0.5 ~hi:7.0 ~tolerance:1e-6 in
  (match o.Perf.Frontier.value with
   | None -> ()
   | Some r -> Alcotest.failf "probe claimed %.17g for an unreachable target" r);
  Alcotest.(check (float 0.0)) "achieved is eval hi" 0.1
    o.Perf.Frontier.achieved;
  Alcotest.(check int) "one evaluation suffices" 1 o.Perf.Frontier.evaluations

let test_probe_validation () =
  let eval r = r in
  List.iter
    (fun (hi, tolerance) ->
      Alcotest.check_raises "probe validation"
        (Invalid_argument "Frontier.probe: hi must be positive and finite")
        (fun () ->
          ignore (Perf.Frontier.probe ~eval ~target:0.5 ~hi ~tolerance)))
    [ (0.0, 1e-6); (-1.0, 1e-6); (Float.infinity, 1e-6); (Float.nan, 1e-6) ];
  Alcotest.check_raises "tolerance validation"
    (Invalid_argument "Frontier.probe: tolerance must be positive") (fun () ->
      ignore (Perf.Frontier.probe ~eval ~target:0.5 ~hi:1.0 ~tolerance:0.0))

(* Server.Quantile is the 1-point degenerate case of the frontier: its
   search must be the same record Frontier.probe returns, bit for bit
   (serve.t additionally pins the absolute values over the wire). *)
let test_quantile_delegates () =
  let eval x = 1.0 -. exp (-.2.0 *. x) in
  let q = Server.Quantile.search ~eval ~target:0.75 ~hi:20.0 ~tolerance:1e-7 in
  let f = Perf.Frontier.probe ~eval ~target:0.75 ~hi:20.0 ~tolerance:1e-7 in
  (match (q.Server.Quantile.value, f.Perf.Frontier.value) with
   | Some a, Some b when bits a = bits b -> ()
   | None, None -> ()
   | _ -> Alcotest.fail "Quantile.search diverged from Frontier.probe");
  if bits q.Server.Quantile.achieved <> bits f.Perf.Frontier.achieved then
    Alcotest.fail "achieved probabilities differ";
  Alcotest.(check int) "evaluation counts" f.Perf.Frontier.evaluations
    q.Server.Quantile.evaluations

(* ------------------------------------------------------------------ *)
(* sweep: certified staircase on an analytic two-variable eval.        *)

let test_sweep_analytic () =
  (* p(t, r) = (1 - exp(-t)) (1 - exp(-r)): monotone in both arguments,
     with the exact boundary r*(t) = -ln(1 - target / (1 - exp(-t)))
     wherever 1 - exp(-t) > target (and infeasible below that t). *)
  let target = 0.3 in
  let eval ~t ~r = (1.0 -. exp (-.t)) *. (1.0 -. exp (-.r)) in
  let tolerance = 1e-6 in
  let s =
    Perf.Frontier.sweep ~eval ~target ~time_bound:4.0 ~reward_bound:8.0
      ~points:16 ~tolerance
  in
  if s.Perf.Frontier.points = [] then Alcotest.fail "empty staircase";
  let last_t = ref 0.0 and last_r = ref Float.infinity in
  List.iter
    (fun (p : Perf.Frontier.point) ->
      if p.Perf.Frontier.t <= !last_t then Alcotest.fail "t not increasing";
      if p.Perf.Frontier.r >= !last_r then Alcotest.fail "r not decreasing";
      last_t := p.Perf.Frontier.t;
      last_r := p.Perf.Frontier.r;
      (* The emitted probability is eval's actual value there... *)
      if bits p.Perf.Frontier.probability
         <> bits (eval ~t:p.Perf.Frontier.t ~r:p.Perf.Frontier.r)
      then Alcotest.fail "probability is not eval at the emitted point";
      (* ... it meets the target ... *)
      if p.Perf.Frontier.probability < target then
        Alcotest.fail "emitted point below the target";
      (* ... and the resolved reward is within the certified tolerance
         of the analytic boundary. *)
      let mass = 1.0 -. exp (-.p.Perf.Frontier.t) in
      if mass <= target then
        Alcotest.failf "infeasible row t=%g emitted" p.Perf.Frontier.t;
      let exact = -.Float.log (1.0 -. (target /. mass)) in
      if Float.abs (p.Perf.Frontier.r -. exact) > tolerance then
        Alcotest.failf "row t=%g resolved r=%.12g, exact %.12g (tol %g)"
          p.Perf.Frontier.t p.Perf.Frontier.r exact tolerance)
    s.Perf.Frontier.points;
  (* Rows with 1 - exp(-t) <= target are infeasible at any reward: the
     grid has 16 rows but the staircase must start strictly later. *)
  let t_min = -.Float.log (1.0 -. target) in
  (match s.Perf.Frontier.points with
   | first :: _ ->
     if first.Perf.Frontier.t <= t_min then
       Alcotest.fail "sweep emitted a row below the feasibility threshold"
   | [] -> ());
  if s.Perf.Frontier.evaluations < List.length s.Perf.Frontier.points then
    Alcotest.fail "evaluation counter below the staircase size"

(* ------------------------------------------------------------------ *)
(* Differential battery: sweeps vs cold single-query solves.           *)

let frontier_text = "frontier[8] P>=0.2 ( a U[t<=2][r<=3] b )"

let uniform_init n = Linalg.Vec.init n (fun _ -> 1.0 /. float_of_int n)

(* One cold probe: a fresh context with the same configuration, no memo,
   cleared process-wide Fox-Glynn windows — the same solve a standalone
   csrl-check invocation would perform. *)
let cold_point ?pool ?reduction m labeling ~init ~path ~t ~r =
  Numerics.Fox_glynn.cache_clear ();
  let ctx = Checker.make ?pool ?reduction m labeling in
  let phi, psi =
    match path with
    | Logic.Ast.Until (_, _, phi, psi) -> (phi, psi)
    | _ -> Alcotest.fail "frontier query without an until"
  in
  let probe =
    Logic.Ast.Prob_query
      (Logic.Ast.Until
         (Numerics.Time_interval.upto t, Numerics.Time_interval.upto r, phi, psi))
  in
  match Checker.eval_query ctx probe with
  | Checker.Numeric values -> Linalg.Vec.dot init values
  | _ -> Alcotest.fail "numeric verdict expected"

let differential_on ?pool ?reduction what m labeling =
  let query = Logic.Parser.query frontier_text in
  let path =
    match query with
    | Logic.Ast.Frontier_query { path; _ } -> path
    | _ -> Alcotest.fail "not a frontier query"
  in
  let init = uniform_init (Markov.Mrm.n_states m) in
  let ctx = Checker.make ?pool ?reduction m labeling in
  let memo = Checker.create_memo () in
  let result = Batch.Frontier.run ~memo ~tolerance:1e-4 ctx ~init query in
  List.iter
    (fun (p : Batch.Frontier.point) ->
      let cold =
        cold_point ?pool ?reduction m labeling ~init ~path
          ~t:p.Batch.Frontier.t ~r:p.Batch.Frontier.r
      in
      if bits p.Batch.Frontier.probability <> bits cold then
        Alcotest.failf
          "%s: point (t=%.17g, r=%.17g) sweep %.17g != cold %.17g" what
          p.Batch.Frontier.t p.Batch.Frontier.r p.Batch.Frontier.probability
          cold)
    result.Batch.Frontier.points;
  result

let test_differential () =
  (* Seeds chosen so the battery exercises non-trivial staircases; the
     sweep must agree with cold solves regardless, so empty frontiers
     on some configurations are fine as long as one seed emits. *)
  let emitted = ref 0 in
  List.iter
    (fun seed ->
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed Models.Random_mrm.default
      in
      let plain = differential_on "sequential/reduced" m labeling in
      emitted := !emitted + List.length plain.Batch.Frontier.points;
      let no_reduce =
        differential_on ~reduction:Perf.Reduction.none "no-reduce" m labeling
      in
      (* The reduction pipeline must not change what the sweep emits:
         same staircase coordinates, same probabilities, bit for bit. *)
      if
        List.length plain.Batch.Frontier.points
        <> List.length no_reduce.Batch.Frontier.points
      then Alcotest.fail "reduction changed the staircase size";
      List.iter2
        (fun (a : Batch.Frontier.point) (b : Batch.Frontier.point) ->
          if
            bits a.Batch.Frontier.t <> bits b.Batch.Frontier.t
            || bits a.Batch.Frontier.r <> bits b.Batch.Frontier.r
            || bits a.Batch.Frontier.probability
               <> bits b.Batch.Frontier.probability
          then Alcotest.fail "reduction changed a staircase point")
        plain.Batch.Frontier.points no_reduce.Batch.Frontier.points;
      Parallel.Pool.with_pool ~jobs:3 (fun pool ->
          let pooled = differential_on ~pool "pool" m labeling in
          List.iter2
            (fun (a : Batch.Frontier.point) (b : Batch.Frontier.point) ->
              if bits a.Batch.Frontier.probability
                 <> bits b.Batch.Frontier.probability
              then Alcotest.fail "pool changed a staircase point")
            plain.Batch.Frontier.points pooled.Batch.Frontier.points;
          ignore
            (differential_on ~pool ~reduction:Perf.Reduction.none
               "pool/no-reduce" m labeling)))
    [ 3L; 7L; 11L; 19L ];
  if !emitted = 0 then
    Alcotest.fail "no staircase point emitted across any battery seed"

(* ------------------------------------------------------------------ *)
(* qcheck properties on random labeled models.                         *)

let gen_seed = QCheck2.Gen.int_range 0 10_000

let eval_on ctx memo ~init ~t ~r =
  let probe =
    Logic.Ast.Prob_query
      (Logic.Ast.Until
         (Numerics.Time_interval.upto t, Numerics.Time_interval.upto r, Logic.Ast.Ap "a",
          Logic.Ast.Ap "b"))
  in
  match Checker.eval_query ~memo ctx probe with
  | Checker.Numeric values -> Linalg.Vec.dot init values
  | _ -> QCheck2.Test.fail_report "numeric verdict expected"

(* The sweep's brackets are sound only because the until probability is
   monotone nondecreasing in both bounds; pin that on random models
   (with a small numerical slack for the engines' truncation error). *)
let until_is_monotone =
  QCheck2.Test.make ~count:20 ~name:"until monotone in t and r"
    QCheck2.Gen.(triple gen_seed (float_range 0.2 2.0) (float_range 0.2 3.0))
    (fun (seed, t, r) ->
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let init = uniform_init (Markov.Mrm.n_states m) in
      let ctx = Checker.make m labeling in
      let memo = Checker.create_memo () in
      let p = eval_on ctx memo ~init ~t ~r in
      let slack = 1e-7 in
      let p_t = eval_on ctx memo ~init ~t:(t *. 1.5) ~r in
      if p_t < p -. slack then
        QCheck2.Test.fail_reportf
          "p(%.3g, %.3g) = %.12g > p(%.3g, %.3g) = %.12g: not monotone in t" t
          r p (t *. 1.5) r p_t;
      let p_r = eval_on ctx memo ~init ~t ~r:(r *. 1.5) in
      if p_r < p -. slack then
        QCheck2.Test.fail_reportf
          "p(%.3g, %.3g) = %.12g > p(%.3g, %.3g) = %.12g: not monotone in r" t
          r p t (r *. 1.5) p_r;
      true)

let check_counters what counters =
  List.iter
    (fun (name, (c : Perf.Batch.counters)) ->
      if c.Perf.Batch.hits + c.Perf.Batch.misses <> c.Perf.Batch.lookups then
        QCheck2.Test.fail_reportf
          "%s: cache %s: hits (%d) + misses (%d) <> lookups (%d)" what name
          c.Perf.Batch.hits c.Perf.Batch.misses c.Perf.Batch.lookups)
    counters

(* The staircase shape, plus warm-memo reruns: sweeping again on the
   same memo must answer byte-identically (every probe a cache hit can
   serve is served the exact stored value) with coherent counters. *)
let sweep_staircase_and_warm_rerun =
  QCheck2.Test.make ~count:20 ~name:"staircase antichain; warm rerun identical"
    gen_seed (fun seed ->
      let m, labeling =
        Models.Random_mrm.generate_labeled ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let init = uniform_init (Markov.Mrm.n_states m) in
      let query = Logic.Parser.query "frontier[6] P>=0.1 ( a U[t<=2][r<=3] b )" in
      let ctx = Checker.make m labeling in
      let memo = Checker.create_memo () in
      let first = Batch.Frontier.run ~memo ~tolerance:1e-3 ctx ~init query in
      let last_t = ref 0.0 and last_r = ref Float.infinity in
      List.iter
        (fun (p : Batch.Frontier.point) ->
          if p.Batch.Frontier.t <= !last_t then
            QCheck2.Test.fail_report "staircase t not strictly increasing";
          if p.Batch.Frontier.r >= !last_r then
            QCheck2.Test.fail_report "staircase r not strictly decreasing";
          if p.Batch.Frontier.probability < 0.1 then
            QCheck2.Test.fail_report "staircase point below the target";
          last_t := p.Batch.Frontier.t;
          last_r := p.Batch.Frontier.r)
        first.Batch.Frontier.points;
      check_counters "first sweep" (Checker.memo_counters memo);
      let again = Batch.Frontier.run ~memo ~tolerance:1e-3 ctx ~init query in
      if
        List.length first.Batch.Frontier.points
        <> List.length again.Batch.Frontier.points
        || first.Batch.Frontier.evaluations
           <> again.Batch.Frontier.evaluations
      then QCheck2.Test.fail_report "warm rerun changed the sweep shape";
      List.iter2
        (fun (a : Batch.Frontier.point) (b : Batch.Frontier.point) ->
          if
            bits a.Batch.Frontier.t <> bits b.Batch.Frontier.t
            || bits a.Batch.Frontier.r <> bits b.Batch.Frontier.r
            || bits a.Batch.Frontier.probability
               <> bits b.Batch.Frontier.probability
          then QCheck2.Test.fail_report "warm rerun changed a point")
        first.Batch.Frontier.points again.Batch.Frontier.points;
      check_counters "warm rerun" (Checker.memo_counters memo);
      true)

let suite =
  ( "frontier",
    [ Alcotest.test_case "probe finds the analytic quantile" `Quick
        test_probe_analytic;
      Alcotest.test_case "probe reports unreachable targets" `Quick
        test_probe_unreachable;
      Alcotest.test_case "probe validates its arguments" `Quick
        test_probe_validation;
      Alcotest.test_case "quantile search is the 1-point sweep" `Quick
        test_quantile_delegates;
      Alcotest.test_case "sweep matches the analytic boundary" `Quick
        test_sweep_analytic;
      Alcotest.test_case "sweep points bit-identical to cold solves" `Quick
        test_differential;
      QCheck_alcotest.to_alcotest until_is_monotone;
      QCheck_alcotest.to_alcotest sweep_staircase_and_warm_rerun ] )
