(* Tests for the domain pool and the parallel numerical kernels: the
   pool itself (coverage, cutoff, exceptions, nesting), bit-identity of
   the row-partitioned kernels against the sequential code, and
   agreement of the three Section 4 engines across pool sizes. *)

let with_pool = Parallel.Pool.with_pool

(* ---------------- the pool itself ---------------------------------- *)

let test_pool_lifecycle () =
  let p = Parallel.Pool.create 3 in
  Alcotest.(check int) "size" 3 (Parallel.Pool.size p);
  Parallel.Pool.shutdown p;
  Parallel.Pool.shutdown p;
  (* Shut-down pools degrade to sequential execution instead of hanging. *)
  let hits = ref 0 in
  Parallel.Pool.parallel_for ~cutoff:1 p ~lo:0 ~hi:10 (fun lo hi ->
      hits := !hits + (hi - lo));
  Alcotest.(check int) "after shutdown" 10 !hits;
  Alcotest.(check int) "sequential size" 1
    (Parallel.Pool.size Parallel.Pool.sequential);
  Alcotest.check_raises "create 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Parallel.Pool.create 0));
  if Parallel.Pool.default_job_count () < 1 then
    Alcotest.fail "default_job_count < 1"

let test_parallel_for_covers () =
  with_pool ~jobs:4 @@ fun p ->
  List.iter
    (fun (lo, hi) ->
      let n = Stdlib.max 0 (hi - lo) in
      let seen = Array.make (Stdlib.max 1 n) 0 in
      Parallel.Pool.parallel_for ~cutoff:1 p ~lo ~hi (fun clo chi ->
          for i = clo to chi - 1 do
            seen.(i - lo) <- seen.(i - lo) + 1
          done);
      Array.iteri
        (fun i c ->
          if i < n && c <> 1 then
            Alcotest.failf "[%d,%d): index %d visited %d times" lo hi (lo + i) c)
        seen)
    [ (0, 1000); (0, 1); (5, 12); (3, 3); (7, 2); (0, 0) ]

let test_cutoff_inlines () =
  with_pool ~jobs:4 @@ fun p ->
  (* Below the cutoff the body must run as one chunk on the caller. *)
  let chunks = ref [] in
  Parallel.Pool.parallel_for ~cutoff:100 p ~lo:0 ~hi:50 (fun lo hi ->
      chunks := (lo, hi) :: !chunks);
  (match !chunks with
   | [ (0, 50) ] -> ()
   | _ -> Alcotest.failf "expected one inline chunk, got %d" (List.length !chunks))

exception Boom

let test_exceptions_propagate () =
  with_pool ~jobs:4 @@ fun p ->
  Alcotest.check_raises "raises" Boom (fun () ->
      Parallel.Pool.parallel_for ~cutoff:1 p ~lo:0 ~hi:64 (fun lo _ ->
          if lo >= 32 then raise Boom));
  (* The pool survives a failed parallel_for. *)
  let total = ref 0 and m = Mutex.create () in
  Parallel.Pool.parallel_for ~cutoff:1 p ~lo:0 ~hi:100 (fun lo hi ->
      let s = ref 0 in
      for i = lo to hi - 1 do s := !s + i done;
      Mutex.lock m;
      total := !total + !s;
      Mutex.unlock m);
  Alcotest.(check int) "usable after exception" 4950 !total

let test_nested_runs_inline () =
  with_pool ~jobs:4 @@ fun p ->
  let seen = Array.make (8 * 8) 0 in
  Parallel.Pool.parallel_for ~cutoff:1 p ~lo:0 ~hi:8 (fun lo hi ->
      for i = lo to hi - 1 do
        (* A nested parallel_for on the same busy pool must degrade to
           inline execution rather than deadlock. *)
        Parallel.Pool.parallel_for ~cutoff:1 p ~lo:0 ~hi:8 (fun jlo jhi ->
            for j = jlo to jhi - 1 do
              seen.((i * 8) + j) <- seen.((i * 8) + j) + 1
            done)
      done);
  Array.iteri
    (fun k c -> if c <> 1 then Alcotest.failf "cell %d visited %d times" k c)
    seen

(* ---------------- parallel kernels vs sequential ------------------- *)

(* Matrices big enough to cross the SpMV cutoff, so the pool really
   partitions them. *)
let gen_big_matrix =
  QCheck2.Gen.(
    let* n = int_range 300 400 in
    let* m = int_range 1 50 in
    let* entries =
      list_size (int_range 0 800)
        (triple (int_range 0 (n - 1)) (int_range 0 (m - 1))
           (float_range (-5.0) 5.0))
    in
    return (n, m, entries))

let prop_mul_vec_bit_identical =
  QCheck2.Test.make ~count:20 ~name:"parallel A x bit-identical" gen_big_matrix
    (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let x = Array.init m (fun j -> sin (float_of_int (j + 1))) in
      let sequential = Linalg.Csr.mul_vec a (Linalg.Vec.of_array x) in
      with_pool ~jobs:4 @@ fun pool ->
      sequential = Linalg.Csr.mul_vec ~pool a (Linalg.Vec.of_array x))

let prop_vec_mul_matches =
  QCheck2.Test.make ~count:20 ~name:"parallel x A deterministic and close"
    gen_big_matrix (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let x = Array.init n (fun i -> cos (float_of_int i)) in
      let sequential = Linalg.Csr.vec_mul (Linalg.Vec.of_array x) a in
      with_pool ~jobs:4 @@ fun pool ->
      let par1 = Linalg.Csr.vec_mul ~pool (Linalg.Vec.of_array x) a in
      let par2 = Linalg.Csr.vec_mul ~pool (Linalg.Vec.of_array x) a in
      (* The merge of per-chunk accumulators regroups the additions, so
         only rounding-level differences are allowed — but the grouping
         is static, so repeated runs are bit-identical. *)
      par1 = par2
      && Linalg.Vec.linf_dist sequential par1 <= 1e-12)

(* Duplicate and unsorted COO entries: the counting-sort construction
   must sum duplicates in list order, exactly like naive accumulation. *)
let gen_messy_coo =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* m = int_range 1 12 in
    let* entries =
      list_size (int_range 0 60)
        (triple (int_range 0 (n - 1)) (int_range 0 (m - 1))
           (oneofl [ -2.0; -1.0; -0.5; 0.5; 1.0; 2.0 ]))
    in
    return (n, m, entries))

let prop_of_coo_exact =
  QCheck2.Test.make ~count:200 ~name:"of_coo sums duplicates in list order"
    gen_messy_coo (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let dense = Array.make_matrix n m 0.0 in
      List.iter (fun (i, j, v) -> dense.(i).(j) <- dense.(i).(j) +. v) entries;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to m - 1 do
          if Linalg.Csr.get a i j <> dense.(i).(j) then ok := false
        done
      done;
      !ok)

(* ---------------- the three engines across pool sizes -------------- *)

let solve_with ~pool p =
  [ ("sericola", Perf.Sericola.solve ~epsilon:1e-12 ?pool p);
    ("erlang", Perf.Erlang_approx.solve ~phases:128 ?pool p);
    ( "discretise",
      let limit = Perf.Discretization.max_stable_step p in
      let d = ref (1.0 /. 16.0) in
      while !d > limit || !d > 1.0 /. 64.0 do
        d := !d /. 2.0
      done;
      Perf.Discretization.solve ~step:!d ?pool p ) ]

let prop_engines_pool_invariant =
  QCheck2.Test.make ~count:8 ~name:"engines agree across jobs in {1,2,4}"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p =
        Models.Random_mrm.generate_problem ~seed:(Int64.of_int seed)
          Models.Random_mrm.default
      in
      let sequential = solve_with ~pool:None p in
      List.for_all
        (fun jobs ->
          with_pool ~jobs @@ fun pool ->
          let pooled = solve_with ~pool:(Some pool) p in
          List.for_all2
            (fun (name, a) (_, b) ->
              let close = Float.abs (a -. b) <= 1e-12 in
              (* jobs = 1 is the exact sequential code path. *)
              let exact_ok = jobs > 1 || a = b in
              if not (close && exact_ok) then
                QCheck2.Test.fail_reportf
                  "%s: jobs=%d gives %.17g, sequential %.17g (seed %d)" name
                  jobs b a seed
              else true)
            sequential pooled)
        [ 1; 2; 4 ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "parallel",
    [ Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
      Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers;
      Alcotest.test_case "cutoff inlines" `Quick test_cutoff_inlines;
      Alcotest.test_case "exception propagation" `Quick test_exceptions_propagate;
      Alcotest.test_case "nested runs inline" `Quick test_nested_runs_inline;
      q prop_mul_vec_bit_identical;
      q prop_vec_mul_matches;
      q prop_of_coo_exact;
      q prop_engines_pool_invariant ] )
