(* Unit and property tests for vectors, CSR matrices and solvers. *)

let check_close ?(tol = 1e-12) what expected actual =
  if not (Numerics.Float_utils.approx_eq ~rel:tol ~abs:tol expected actual)
  then Alcotest.failf "%s: expected %.17g, got %.17g" what expected actual

let check_vec ?(tol = 1e-12) what expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length mismatch" what;
  Array.iteri
    (fun i e -> check_close ~tol (Printf.sprintf "%s[%d]" what i) e actual.(i))
    expected

(* ------------------------------------------------------------------ *)

let vec = Linalg.Vec.of_array

let test_vec_basics () =
  check_vec "create" [| 0.0; 0.0 |] (Linalg.Vec.to_array (Linalg.Vec.create 2));
  check_vec "init" [| 0.0; 1.0; 2.0 |] (Linalg.Vec.to_array (Linalg.Vec.init 3 float_of_int));
  check_vec "scale" [| 2.0; 4.0 |] (Linalg.Vec.to_array (Linalg.Vec.scale 2.0 (vec [| 1.0; 2.0 |])));
  check_vec "add" [| 4.0; 6.0 |] (Linalg.Vec.to_array (Linalg.Vec.add (vec [| 1.0; 2.0 |]) (vec [| 3.0; 4.0 |])));
  let y = vec [| 1.0; 1.0 |] in
  Linalg.Vec.axpy ~alpha:2.0 ~x:(vec [| 1.0; 2.0 |]) ~y;
  check_vec "axpy" [| 3.0; 5.0 |] (Linalg.Vec.to_array y);
  check_close "dot" 11.0 (Linalg.Vec.dot (vec [| 1.0; 2.0 |]) (vec [| 3.0; 4.0 |]));
  check_close "sum" 6.0 (Linalg.Vec.sum (vec [| 1.0; 2.0; 3.0 |]));
  check_vec "normalize" [| 0.25; 0.75 |]
    (Linalg.Vec.to_array (Linalg.Vec.normalize (vec [| 1.0; 3.0 |])));
  check_close "masked_sum" 5.0
    (Linalg.Vec.masked_sum (vec [| 1.0; 2.0; 4.0 |]) [| true; false; true |]);
  check_vec "unit" [| 0.0; 1.0; 0.0 |] (Linalg.Vec.to_array (Linalg.Vec.unit 3 1));
  check_close "linf" 2.0 (Linalg.Vec.linf_dist (vec [| 0.0; 3.0 |]) (vec [| 1.0; 5.0 |]));
  Alcotest.(check bool) "is_distribution yes" true
    (Linalg.Vec.is_distribution (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "is_distribution no" false
    (Linalg.Vec.is_distribution (vec [| 0.5; 0.6 |]));
  Alcotest.(check bool) "is_sub_distribution" true
    (Linalg.Vec.is_sub_distribution (vec [| 0.2; 0.3 |]));
  Alcotest.check_raises "normalize zero"
    (Invalid_argument "Vec.normalize: non-positive sum") (fun () ->
      ignore (Linalg.Vec.normalize (vec [| 0.0; 0.0 |])))

let dense_example = [| [| 0.0; 2.0; 0.0 |]; [| 1.0; 0.0; 3.0 |]; [| 0.0; 0.0; 0.0 |] |]

let test_csr_roundtrip () =
  let a = Linalg.Csr.of_dense dense_example in
  Alcotest.(check int) "rows" 3 (Linalg.Csr.rows a);
  Alcotest.(check int) "cols" 3 (Linalg.Csr.cols a);
  Alcotest.(check int) "nnz" 3 (Linalg.Csr.nnz a);
  let back = Linalg.Csr.to_dense a in
  Array.iteri (fun i row -> check_vec (Printf.sprintf "row %d" i) row back.(i))
    dense_example;
  check_close "get stored" 3.0 (Linalg.Csr.get a 1 2);
  check_close "get zero" 0.0 (Linalg.Csr.get a 0 0)

let test_csr_duplicates () =
  let a = Linalg.Csr.of_coo ~rows:2 ~cols:2 [ (0, 1, 1.0); (0, 1, 2.5); (1, 0, -1.0); (1, 0, 1.0) ] in
  check_close "summed" 3.5 (Linalg.Csr.get a 0 1);
  (* The (1,0) entries cancel exactly and must be dropped. *)
  Alcotest.(check int) "cancelled dropped" 1 (Linalg.Csr.nnz a);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Csr.of_coo: entry (2,0) out of 2x2") (fun () ->
      ignore (Linalg.Csr.of_coo ~rows:2 ~cols:2 [ (2, 0, 1.0) ]))

let test_csr_products () =
  let a = Linalg.Csr.of_dense dense_example in
  check_vec "A x" [| 4.0; 10.0; 0.0 |] (Linalg.Vec.to_array (Linalg.Csr.mul_vec a (Linalg.Vec.of_array [| 1.0; 2.0; 3.0 |])));
  check_vec "x A" [| 2.0; 2.0; 6.0 |] (Linalg.Vec.to_array (Linalg.Csr.vec_mul (Linalg.Vec.of_array [| 1.0; 2.0; 3.0 |]) a));
  let t = Linalg.Csr.transpose a in
  check_close "transpose entry" 2.0 (Linalg.Csr.get t 1 0);
  check_vec "A^T x = x A" (Linalg.Vec.to_array (Linalg.Csr.vec_mul (Linalg.Vec.of_array [| 1.0; 2.0; 3.0 |]) a))
    (Linalg.Vec.to_array (Linalg.Csr.mul_vec t (Linalg.Vec.of_array [| 1.0; 2.0; 3.0 |])))

let test_csr_utils () =
  let a = Linalg.Csr.of_dense dense_example in
  check_close "row_sum" 4.0 (Linalg.Csr.row_sum a 1);
  let doubled = Linalg.Csr.scale 2.0 a in
  check_close "scale" 6.0 (Linalg.Csr.get doubled 1 2);
  let mapped = Linalg.Csr.mapi (fun i j v -> if i = 1 && j = 0 then 0.0 else v) a in
  Alcotest.(check int) "mapi dropped a zero" 2 (Linalg.Csr.nnz mapped);
  let eye = Linalg.Csr.identity 3 in
  check_vec "identity action" [| 1.0; 2.0; 3.0 |]
    (Linalg.Vec.to_array (Linalg.Csr.mul_vec eye (Linalg.Vec.of_array [| 1.0; 2.0; 3.0 |])));
  check_vec "diagonal" [| 0.0; 0.0; 0.0 |] (Linalg.Vec.to_array (Linalg.Csr.diagonal a));
  let filtered = Linalg.Csr.filter_rows a ~keep:(fun i -> i <> 1) in
  check_close "filter_rows keeps" 2.0 (Linalg.Csr.get filtered 0 1);
  check_close "filter_rows drops" 0.0 (Linalg.Csr.get filtered 1 2);
  Alcotest.(check bool) "equal_approx" true
    (Linalg.Csr.equal_approx a (Linalg.Csr.of_dense dense_example));
  Alcotest.(check bool) "equal_approx differs" false
    (Linalg.Csr.equal_approx a eye)

(* Fixed point x = A x + b with A = [[0, 1/2], [0, 0]], b = [0; 1]:
   solution x = [1/2; 1]. *)
let test_fixpoint_solvers () =
  let a = Linalg.Csr.of_dense [| [| 0.0; 0.5 |]; [| 0.0; 0.0 |] |] in
  let b = [| 0.0; 1.0 |] in
  let jac = Linalg.Solvers.jacobi_fixpoint a ~b:(Linalg.Vec.of_array b) in
  Alcotest.(check bool) "jacobi converged" true jac.Linalg.Solvers.converged;
  check_vec ~tol:1e-10 "jacobi solution" [| 0.5; 1.0 |] (Linalg.Vec.to_array jac.Linalg.Solvers.solution);
  let gs = Linalg.Solvers.gauss_seidel_fixpoint a ~b:(Linalg.Vec.of_array b) in
  Alcotest.(check bool) "gs converged" true gs.Linalg.Solvers.converged;
  check_vec ~tol:1e-10 "gs solution" [| 0.5; 1.0 |] (Linalg.Vec.to_array gs.Linalg.Solvers.solution);
  (* Gauss-Seidel should use no more sweeps than Jacobi here. *)
  if gs.Linalg.Solvers.iterations > jac.Linalg.Solvers.iterations then
    Alcotest.fail "gauss-seidel slower than jacobi on a triangular system";
  (* A non-converging setup: x = x + 1 diverges and must be reported. *)
  let bad = Linalg.Solvers.jacobi_fixpoint ~max_iter:50 (Linalg.Csr.identity 1) ~b:(Linalg.Vec.of_array [| 1.0 |]) in
  Alcotest.(check bool) "divergence flagged" false bad.Linalg.Solvers.converged

(* Two-state chain with P = [[1-a, a], [b, 1-b]]: stationary distribution
   is (b, a) / (a + b). *)
let test_power_stationary () =
  let a = 0.3 and b = 0.1 in
  let p = Linalg.Csr.of_dense [| [| 1.0 -. a; a |]; [| b; 1.0 -. b |] |] in
  let outcome = Linalg.Solvers.power_stationary ~tol:1e-14 p in
  Alcotest.(check bool) "converged" true outcome.Linalg.Solvers.converged;
  check_vec ~tol:1e-10 "stationary"
    [| b /. (a +. b); a /. (a +. b) |]
    (Linalg.Vec.to_array outcome.Linalg.Solvers.solution)

(* ---------------- property tests ---------------------------------- *)

let gen_matrix =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* m = int_range 1 6 in
    let* entries =
      list_size (int_range 0 20)
        (triple (int_range 0 (n - 1)) (int_range 0 (m - 1))
           (float_range (-5.0) 5.0))
    in
    return (n, m, entries))

let prop_dense_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"csr of_dense . to_dense = id" gen_matrix
    (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let b = Linalg.Csr.of_dense (Linalg.Csr.to_dense a) in
      Linalg.Csr.equal_approx a b)

let prop_transpose_involution =
  QCheck2.Test.make ~count:100 ~name:"transpose involutive" gen_matrix
    (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      Linalg.Csr.equal_approx a (Linalg.Csr.transpose (Linalg.Csr.transpose a)))

let prop_bilinear =
  QCheck2.Test.make ~count:100 ~name:"x (A y) = (x A) y" gen_matrix
    (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let y = Array.init m (fun j -> float_of_int (2 * j) -. 3.0) in
      let lhs = Linalg.Vec.dot (Linalg.Vec.of_array x) (Linalg.Csr.mul_vec a (Linalg.Vec.of_array y)) in
      let rhs = Linalg.Vec.dot (Linalg.Csr.vec_mul (Linalg.Vec.of_array x) a) (Linalg.Vec.of_array y) in
      Numerics.Float_utils.approx_eq ~rel:1e-9 ~abs:1e-9 lhs rhs)

(* ---------------- Bigarray kernel battery -------------------------- *)

(* Reference kernels in seed [float array] form: each row accumulated
   over ascending stored columns with plain [+.] — exactly the summation
   order of the pre-Bigarray implementation.  The Bigarray kernels claim
   bit-identity with that order, so every comparison below is on the raw
   bits, not within a tolerance. *)
let ref_mul_vec a x =
  Array.init (Linalg.Csr.rows a) (fun i ->
      Linalg.Csr.fold_row a i ~init:0.0 ~f:(fun acc j v -> acc +. (v *. x.(j))))

let ref_vec_mul x a =
  let y = Array.make (Linalg.Csr.cols a) 0.0 in
  Linalg.Csr.iter a (fun i j v -> y.(j) <- y.(j) +. (x.(i) *. v));
  y

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let same_vec (v : Linalg.Vec.t) a =
  Linalg.Vec.length v = Array.length a
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (same_float x v.{i}) then ok := false) a;
  !ok

let gen_matrix_vec =
  QCheck2.Gen.(
    let* n, m, entries = gen_matrix in
    let* x = array_size (return m) (float_range (-3.0) 3.0) in
    let* w = array_size (return n) (float_range (-3.0) 3.0) in
    return (n, m, entries, x, w))

let prop_spmv_matches_seed =
  QCheck2.Test.make ~count:200 ~name:"spmv bit-identical to seed reference"
    gen_matrix_vec (fun (n, m, entries, x, _) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let xv = Linalg.Vec.of_array x in
      let expect = ref_mul_vec a x in
      let fresh = Linalg.Vec.create n in
      Linalg.Csr.spmv_into a xv fresh;
      (* A dirty destination must be fully overwritten, zero rows
         included. *)
      let dirty = Linalg.Vec.init n (fun i -> float_of_int i +. 0.25) in
      Linalg.Csr.spmv_into a xv dirty;
      same_vec (Linalg.Csr.mul_vec a xv) expect
      && same_vec fresh expect && same_vec dirty expect)

let prop_vec_mul_matches_seed =
  QCheck2.Test.make ~count:200 ~name:"vec_mul bit-identical to seed reference"
    gen_matrix_vec (fun (n, m, entries, _, w) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let wv = Linalg.Vec.of_array w in
      let expect = ref_vec_mul w a in
      let dirty = Linalg.Vec.init m (fun j -> float_of_int j -. 0.5) in
      Linalg.Csr.vec_mul_into wv a dirty;
      same_vec (Linalg.Csr.vec_mul wv a) expect && same_vec dirty expect)

let prop_into_variants_bitwise =
  QCheck2.Test.make ~count:200
    ~name:"_into variants bit-identical to allocating forms" gen_matrix_vec
    (fun (_, _, _, x, _) ->
      let n = Array.length x in
      let xv = Linalg.Vec.of_array x in
      let yv = Linalg.Vec.init n (fun i -> float_of_int (n - i) /. 7.0) in
      (* axpy mutates y, so run the in-place form on a copy. *)
      let via_axpy = Linalg.Vec.copy yv in
      Linalg.Vec.axpy ~alpha:0.375 ~x:xv ~y:via_axpy;
      let via_into = Linalg.Vec.create n in
      Linalg.Vec.axpy_into ~alpha:0.375 ~x:xv ~y:yv via_into;
      let scaled = Linalg.Vec.scale 1.75 xv in
      let scaled_into = Linalg.Vec.create n in
      Linalg.Vec.scale_into 1.75 xv scaled_into;
      let scaled_in_place = Linalg.Vec.copy xv in
      Linalg.Vec.scale_in_place 1.75 scaled_in_place;
      let copied = Linalg.Vec.create n in
      Linalg.Vec.copy_into xv copied;
      same_vec via_into (Linalg.Vec.to_array via_axpy)
      && same_vec scaled_into (Linalg.Vec.to_array scaled)
      && same_vec scaled_in_place (Linalg.Vec.to_array scaled)
      && same_vec copied x
      && same_float (Linalg.Vec.dot xv yv)
           (Linalg.Vec.dot (Linalg.Vec.of_array x) yv))

let prop_coo_roundtrip_exact =
  QCheck2.Test.make ~count:200 ~name:"of_coo . iter round-trip exact"
    gen_matrix (fun (n, m, entries) ->
      let a = Linalg.Csr.of_coo ~rows:n ~cols:m entries in
      let triples = ref [] in
      Linalg.Csr.iter a (fun i j v -> triples := (i, j, v) :: !triples);
      let b = Linalg.Csr.of_coo ~rows:n ~cols:m (List.rev !triples) in
      Linalg.Csr.nnz a = Linalg.Csr.nnz b
      &&
      let ok = ref true in
      Linalg.Csr.iter a (fun i j v ->
          if not (same_float v (Linalg.Csr.get b i j)) then ok := false);
      !ok)

(* A deterministic matrix big enough to clear the 256-row sequential
   cutoff, so the pool paths really partition the row range. *)
let big_random_matrix n =
  let st = Random.State.make [| 0x5eed; n |] in
  let entries =
    List.init (n * 4) (fun _ ->
        ( Random.State.int st n,
          Random.State.int st n,
          Random.State.float st 2.0 -. 1.0 ))
  in
  (Linalg.Csr.of_coo ~rows:n ~cols:n entries, st)

let test_spmv_pool_bitwise () =
  let n = 600 in
  let a, st = big_random_matrix n in
  let x = Linalg.Vec.init n (fun _ -> Random.State.float st 1.0) in
  let seq = Linalg.Csr.mul_vec a x in
  let seq_t = Linalg.Csr.vec_mul x a in
  Parallel.Pool.with_pool ~jobs:3 (fun pool ->
      let par = Linalg.Csr.mul_vec ~pool a x in
      for i = 0 to n - 1 do
        if not (same_float seq.{i} par.{i}) then
          Alcotest.failf "pooled spmv differs at row %d: %.17g vs %.17g" i
            seq.{i} par.{i}
      done;
      let par_into = Linalg.Vec.init n (fun i -> float_of_int i) in
      Linalg.Csr.spmv_into ~pool a x par_into;
      for i = 0 to n - 1 do
        if not (same_float seq.{i} par_into.{i}) then
          Alcotest.failf "pooled spmv_into differs at row %d" i
      done;
      (* The transposed product merges per-domain buffers, so the pooled
         path is only guaranteed equal up to rounding. *)
      let par_t = Linalg.Csr.vec_mul ~pool x a in
      for j = 0 to n - 1 do
        if
          not
            (Numerics.Float_utils.approx_eq ~rel:1e-12 ~abs:1e-12 seq_t.{j}
               par_t.{j})
        then Alcotest.failf "pooled vec_mul differs at col %d" j
      done)

(* The layout overhaul's contract: the in-place kernels are
   allocation-free in steady state (measured in minor-heap words; the
   baseline cancels the boxed float [Gc.minor_words] itself returns). *)
let test_kernel_allocation () =
  let n = 300 in
  let a, st = big_random_matrix n in
  let x = Linalg.Vec.init n (fun _ -> Random.State.float st 1.0) in
  let y = Linalg.Vec.create n in
  let z = Linalg.Vec.create n in
  let measure f =
    f ();
    f ();
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let baseline = measure (fun () -> ()) in
  let check ?(allow = 0.0) name f =
    let d = measure f -. baseline in
    if d > allow then
      Alcotest.failf "%s allocated %.0f minor words per call" name d
  in
  check "spmv_into" (fun () -> Linalg.Csr.spmv_into a x y);
  check "vec_mul_into" (fun () -> Linalg.Csr.vec_mul_into x a y);
  check "axpy" (fun () -> Linalg.Vec.axpy ~alpha:0.5 ~x ~y);
  check "axpy_into" (fun () -> Linalg.Vec.axpy_into ~alpha:0.5 ~x ~y z);
  check "scale_into" (fun () -> Linalg.Vec.scale_into 0.5 x z);
  check "scale_in_place" (fun () -> Linalg.Vec.scale_in_place 1.0 y);
  check "copy_into" (fun () -> Linalg.Vec.copy_into x z);
  check "blit_range" (fun () -> Linalg.Vec.blit_range x 10 z 20 100);
  check "fill_range" (fun () -> Linalg.Vec.fill_range z 0 n 0.0);
  (* Float-returning entry points box their result (a cross-module call
     returns a boxed float on the vanilla compiler) — that one box is the
     whole per-call budget. *)
  check ~allow:4.0 "dot" (fun () -> y.{0} <- Linalg.Vec.dot x x);
  check ~allow:4.0 "sum" (fun () -> y.{0} <- Linalg.Vec.sum x)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  ( "linalg",
    [ Alcotest.test_case "vec basics" `Quick test_vec_basics;
      Alcotest.test_case "csr roundtrip" `Quick test_csr_roundtrip;
      Alcotest.test_case "csr duplicates" `Quick test_csr_duplicates;
      Alcotest.test_case "csr products" `Quick test_csr_products;
      Alcotest.test_case "csr utilities" `Quick test_csr_utils;
      Alcotest.test_case "fixpoint solvers" `Quick test_fixpoint_solvers;
      Alcotest.test_case "power iteration" `Quick test_power_stationary;
      Alcotest.test_case "pooled kernels bit-identical" `Quick
        test_spmv_pool_bitwise;
      Alcotest.test_case "kernels allocation-free" `Quick
        test_kernel_allocation;
      q prop_dense_roundtrip;
      q prop_transpose_involution;
      q prop_bilinear;
      q prop_spmv_matches_seed;
      q prop_vec_mul_matches_seed;
      q prop_into_variants_bitwise;
      q prop_coo_roundtrip_exact ] )
