The command-line checker on the paper's case study (Section 5.3, Q3):

  $ csrl-check --model adhoc 'P>0.5 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )'
  query:  P>0.5 ((call_idle | doze) U[t<=24][r<=600] call_initiated)
  engine: occupation-time(eps=1e-09)
    state  0  [adhoc_idle,call_idle                    ]  violated
    state  1  [adhoc_active,call_idle                  ]  violated
    state  2  [adhoc_idle,call_initiated               ]  SATISFIED
    state  3  [adhoc_active,call_initiated             ]  SATISFIED
    state  4  [adhoc_idle,call_incoming                ]  violated
    state  5  [adhoc_active,call_incoming              ]  violated
    state  6  [adhoc_idle,call_active                  ]  violated
    state  7  [adhoc_active,call_active                ]  violated
    state  8  [doze                                    ]  violated
  initial distribution satisfies the formula with mass 0
  [1]

Listing propositions:

  $ csrl-check --model adhoc --list-propositions
  model: 9 states, 24 transitions
    adhoc_active             (4 states)
    adhoc_idle               (4 states)
    call_active              (2 states)
    call_idle                (2 states)
    call_incoming            (2 states)
    call_initiated           (2 states)
    doze                     (1 states)

A quantitative query on the multiprocessor model:

  $ csrl-check --model multiprocessor 'S=? ( full )'
  query:  S=? (full)
  engine: occupation-time(eps=1e-09)
    state  0  [down                                    ]  0.9840645099
    state  1  [degraded,up                             ]  0.9840645099
    state  2  [degraded,up                             ]  0.9840645099
    state  3  [degraded,saturated,up                   ]  0.9840645099
    state  4  [full,saturated,up                       ]  0.9840645099
  value from the initial distribution: 0.9840645099

Checking a user-supplied model file with a chosen engine:

  $ cat > station.mrm <<'EOF'
  > states 3
  > reward 0 10
  > reward 1 6
  > rate 0 1 0.1
  > rate 1 0 2.0
  > rate 1 2 0.1
  > rate 2 1 1.0
  > label up 0 1
  > label down 2
  > init 0
  > EOF

  $ csrl-check --file station.mrm --engine erlang:512 'P=? ( up U[t<=10][r<=50] down )'
  query:  P=? (up U[t<=10][r<=50] down)
  engine: pseudo-erlang(k=512)
    state  0  [up                                      ]  0.0216495215
    state  1  [up                                      ]  0.0670019229
    state  2  [down                                    ]  1.0000000000
  value from the initial distribution: 0.0216495215

Running on a domain pool (--jobs) changes nothing about the answer:

  $ csrl-check --model adhoc --jobs 4 'P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )'
  query:  P=? ((call_idle | doze) U[t<=24][r<=600] call_initiated)
  engine: occupation-time(eps=1e-09)
    state  0  [adhoc_idle,call_idle                    ]  0.4969967279
    state  1  [adhoc_active,call_idle                  ]  0.4969562920
    state  2  [adhoc_idle,call_initiated               ]  1.0000000000
    state  3  [adhoc_active,call_initiated             ]  1.0000000000
    state  4  [adhoc_idle,call_incoming                ]  0.0000000000
    state  5  [adhoc_active,call_incoming              ]  0.0000000000
    state  6  [adhoc_idle,call_active                  ]  0.0000000000
    state  7  [adhoc_active,call_active                ]  0.0000000000
    state  8  [doze                                    ]  0.4968541781
  value from the initial distribution: 0.4969967279

  $ csrl-check --model adhoc --jobs 0 'true'
  --jobs needs a positive count
  [2]

Telemetry: --stats appends the convergence counters and gauges after the
verdict.  The state probabilities are bit-identical to the run without
--stats above (recording only reads finished results), and the summary
deliberately omits spans and wall-clock times so it is deterministic:

  $ csrl-check --model adhoc --stats 'P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )'
  query:  P=? ((call_idle | doze) U[t<=24][r<=600] call_initiated)
  engine: occupation-time(eps=1e-09)
    state  0  [adhoc_idle,call_idle                    ]  0.4969967279
    state  1  [adhoc_active,call_idle                  ]  0.4969562920
    state  2  [adhoc_idle,call_initiated               ]  1.0000000000
    state  3  [adhoc_active,call_initiated             ]  1.0000000000
    state  4  [adhoc_idle,call_incoming                ]  0.0000000000
    state  5  [adhoc_active,call_incoming              ]  0.0000000000
    state  6  [adhoc_idle,call_active                  ]  0.0000000000
    state  7  [adhoc_active,call_active                ]  0.0000000000
    state  8  [doze                                    ]  0.4968541781
  value from the initial distribution: 0.4969967279
  telemetry:
    fox_glynn.calls = 3
    reduction.lumped = 0
    reduction.pruned_states = 0
    reduction.runs = 1
    reduction.states_after = 5
    reduction.states_before = 5
    sericola.cells = 8221950
    sericola.layers = 1812
    uniformisation.iterations = 1809
    fox_glynn.left = 289
    fox_glynn.right = 659
    fox_glynn.weight_mass = 1
    pool.chunks = 0
    pool.inline_runs = 0
    pool.parallel_runs = 0
    pool.size = 1
    sericola.achieved_epsilon = 9.85341e-10
    sericola.band = 2
    sericola.bands = 3
    sericola.epsilon = 1e-09
    sericola.x = 0.0625
    uniformisation.q = 468
    uniformisation.rate = 19.5

--trace writes the full report (spans included) as JSON; the lint tool
validates the shape and that the convergence keys were recorded:

  $ csrl-check --model adhoc --trace trace.json 'P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )' > /dev/null
  $ csrl-trace-lint trace.json fox_glynn.right uniformisation.iterations sericola.achieved_epsilon pool.size
  trace.json: valid trace (9 counters, 14 gauges)

Expected rewards (the R-operator extension):

  $ csrl-check --file station.mrm 'R=? ( C[t<=10] )'
  query:  R=? (C[t<=10])
  engine: occupation-time(eps=1e-09)
    state  0  [up                                      ]  97.8001290481
    state  1  [up                                      ]  95.4305556896
    state  2  [down                                    ]  85.6686334794
  value from the initial distribution: 97.8001290481

Parse errors report a position:

  $ csrl-check --model adhoc 'P>0.5 ( a U '
  parse error at position 12: expected a state formula, found end of input
  [2]

Unknown models list the alternatives:

  $ csrl-check --model nonsense 'true'
  unknown model "nonsense"; built-in models:
    adhoc            the paper's ad hoc network case study (9 states)
    adhoc-srn        the same model generated from its stochastic reward net
    multiprocessor   Meyer-style degradable multiprocessor (5 states)
    multiprocessor-tracked the same system with every processor tracked (16 states)
    cluster          workstation cluster with switch and quorum (18 states)
    queue            M/M/1/6 queue with server breakdowns (14 states)
  interval variants:
    multiprocessor-drift the multiprocessor with every rate and reward widened by +/-10%
    <name>-drift[:PCT] any built-in model widened by a +/-PCT% uniform drift (default 10)
  [2]

Batch mode: a JSON file of queries answered over one shared checking
context, with cross-query caching.  The values are bit-identical to the
single-query runs above (q3-value repeats the --jobs 4 query: same
0.4969967279... per state), and the cache section reports what was
shared — here the P>0.5 and P=? forms of Q3 share one path-probability
solve, one Theorem 1 reduction and one until-vector:

  $ cat > batch.json <<'EOF'
  > {"queries": [
  >   {"name": "q3", "query": "P>0.5 ( (call_idle | doze) U[t<=24][r<=600] call_initiated )"},
  >   {"name": "q3-value", "query": "P=? ( (call_idle | doze) U[t<=24][r<=600] call_initiated )"},
  >   "P=? ( F[t<=2] call_initiated )"
  > ]}
  > EOF

  $ csrl-check --model adhoc --batch batch.json
  {"tool":"csrl-check","mode":"batch","engine":"occupation-time(eps=1e-09)","jobs":1,"queries":3,"results":[{"name":"q3","query":"P>0.5 ((call_idle | doze) U[t<=24][r<=600] call_initiated)","kind":"boolean","initial_mass":0,"states":[false,false,true,true,false,false,false,false,false]},{"name":"q3-value","query":"P=? ((call_idle | doze) U[t<=24][r<=600] call_initiated)","kind":"numeric","value":0.4969967279341122,"states":[0.4969967279341122,0.49695629204826719,1,1,0,0,0,0,0.49685417808621879]},{"name":"q2","query":"P=? (F[t<=2] call_initiated)","kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}],"cache":{"path":{"lookups":3,"hits":1,"misses":2,"hit_rate":0.33333333333333331},"reduced":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"reduction":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"sat":{"lookups":7,"hits":1,"misses":6,"hit_rate":0.14285714285714285},"until":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"fox_glynn":{"lookups":4,"hits":2,"misses":2,"hit_rate":0.5}}}

--batch composes with --stats; the batch.* counters mirror the cache
section and stay deterministic:

  $ csrl-check --model adhoc --batch batch.json --stats | grep 'batch\.'
    batch.fox_glynn.hits = 2
    batch.fox_glynn.lookups = 4
    batch.fox_glynn.misses = 2
    batch.path.hits = 1
    batch.path.lookups = 3
    batch.path.misses = 2
    batch.queries = 3
    batch.reduced.hits = 0
    batch.reduced.lookups = 1
    batch.reduced.misses = 1
    batch.reduction.hits = 0
    batch.reduction.lookups = 1
    batch.reduction.misses = 1
    batch.sat.hits = 1
    batch.sat.lookups = 7
    batch.sat.misses = 6
    batch.until.hits = 0
    batch.until.lookups = 1
    batch.until.misses = 1

Malformed input fails with a helpful message and a non-zero exit:

  $ echo '{"queries": [' > bad.json
  $ csrl-check --model adhoc --batch bad.json
  batch file bad.json: JSON parse error at offset 14: unexpected end of input
  [2]

  $ echo '{"queries": ["P=? ( F[t<=2] ("]}' > badq.json
  $ csrl-check --model adhoc --batch badq.json
  batch file badq.json: query q0: parse error at position 15: expected a state formula, found end of input
  [2]

  $ echo '{"queries": []}' > empty.json
  $ csrl-check --model adhoc --batch empty.json
  batch file empty.json: empty "queries" list; expected {"queries": [...]} where each element is a query string or an object {"query": "...", "name": "..."}
  [2]

  $ csrl-check --model adhoc --batch batch.json 'true'
  --batch cannot be combined with a positional formula
  [2]

Model statistics:

  $ csrl-check --model multiprocessor --info
  states:        5
  transitions:   8
  max exit rate: 0.506
  reward levels: {0, 1, 2, 3}
  impulses:      no
  SCCs:          1 (1 bottom)
  propositions:  degraded, down, full, saturated, up
  long-run distribution from the initial distribution:
    state  0  [down]  0.00000001
    state  1  [degraded,up]  0.00000151
    state  2  [degraded,up]  0.00018894
    state  3  [degraded,saturated,up]  0.01574503
    state  4  [full,saturated,up]  0.98406451
  long-run reward rate: 2.99981

The quotient-and-prune reduction pipeline: the tracked multiprocessor
distinguishes the 4 processors individually (16 states) but its labels
and rewards only count them, so the exact lumping quotient collapses
the Theorem 1 model before any engine runs — reduction.states_before
vs reduction.states_after — and init-reachability pruning drops the
blocks unreachable from the fully-operational start:

  $ csrl-check --model multiprocessor-tracked --stats 'P=? ( up U[t<=100][r<=260] down )' | grep -E 'value from|reduction\.'
  value from the initial distribution: 0.0000002490
    reduction.init_pruned_states = 4
    reduction.lumped = 1
    reduction.pruned_states = 0
    reduction.runs = 1
    reduction.states_after = 6
    reduction.states_before = 17

--no-reduce disables the pipeline for A/B timing; the reduction is
exact, so the value is unchanged, and no reduction.* counters appear:

  $ csrl-check --model multiprocessor-tracked --no-reduce --stats 'P=? ( up U[t<=100][r<=260] down )' | grep -E 'value from|reduction\.'
  value from the initial distribution: 0.0000002490

--batch - reads the batch document from stdin, for piping query
generators straight into the checker:

  $ echo '{"queries": ["P=? ( F[t<=2] call_initiated )"]}' | csrl-check --model adhoc --batch -
  {"tool":"csrl-check","mode":"batch","engine":"occupation-time(eps=1e-09)","jobs":1,"queries":1,"results":[{"name":"q0","query":"P=? (F[t<=2] call_initiated)","kind":"numeric","value":0.37447743176383741,"states":[0.37447743176383741,0.39532269446725171,0.99999999957017827,0.99999999957017827,0.37002281863804021,0.38084974756258644,0.36892934159203661,0.37766703858787765,0.33644263477458075]}],"cache":{"path":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"reduced":{"lookups":0,"hits":0,"misses":0,"hit_rate":0},"reduction":{"lookups":0,"hits":0,"misses":0,"hit_rate":0},"sat":{"lookups":2,"hits":0,"misses":2,"hit_rate":0},"until":{"lookups":0,"hits":0,"misses":0,"hit_rate":0},"fox_glynn":{"lookups":1,"hits":0,"misses":1,"hit_rate":0}}}

Frontier queries: --frontier sweeps the two-cost Pareto boundary
{(t, r) : P(phi U[t<=T][r<=R] psi) >= p} over one warm checking
context, bisecting the reward budget per time-grid row and emitting the
staircase corners.  JSON includes the shared-cache report (the
reduction runs once and is reused for every probe):

  $ csrl-check --model adhoc --frontier json 'frontier[5] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )'
  {"tool":"csrl-check","mode":"frontier","engine":"occupation-time(eps=1e-09)","jobs":1,"query":"frontier[5] P>=0.3 ((call_idle | doze) U[t<=6][r<=600] call_initiated)","target":0.3,"time_bound":6,"reward_bound":600,"grid":5,"tolerance":1e-06,"evaluations":113,"points":[{"t":2.4,"r":114.71346739467296,"probability":0.30000000082192335},{"t":3.6,"r":105.92465057536288,"probability":0.30000000028304658},{"t":4.8,"r":105.83486019406638,"probability":0.30000000041229524},{"t":6,"r":105.83485197275877,"probability":0.30000000064211185}],"cache":{"path":{"lookups":113,"hits":0,"misses":113,"hit_rate":0},"reduced":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"reduction":{"lookups":113,"hits":112,"misses":1,"hit_rate":0.99115044247787609},"sat":{"lookups":228,"hits":224,"misses":4,"hit_rate":0.98245614035087714},"until":{"lookups":113,"hits":0,"misses":113,"hit_rate":0},"fox_glynn":{"lookups":339,"hits":333,"misses":6,"hit_rate":0.98230088495575218}}}

The CSV renderer emits the same staircase for plotting:

  $ csrl-check --model adhoc --frontier csv 'frontier[5] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )'
  t,r,probability
  2.3999999999999999,114.71346739467296,0.30000000082192335
  3.6000000000000001,105.92465057536288,0.30000000028304658
  4.7999999999999998,105.83486019406638,0.30000000041229524
  6,105.83485197275877,0.30000000064211185

--stats records the sweep counters, and they are deterministic:

  $ csrl-check --model adhoc --frontier json --stats 'frontier[5] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )' | grep 'frontier\.'
    frontier.evaluations = 113
    frontier.grid = 5
    frontier.points = 4

Batch files mix frontier entries with scalar queries over the same
shared memo; the sweep result carries "kind":"frontier":

  $ cat > frontier-batch.json <<'EOF'
  > {"queries": [
  >   {"name": "plain", "query": "P=? ( F[t<=2] doze )"},
  >   {"name": "sweep", "query": "frontier[3] P>=0.3 ( (call_idle | doze) U[t<=6][r<=600] call_initiated )"}
  > ]}
  > EOF

  $ csrl-check --model adhoc --batch frontier-batch.json
  {"tool":"csrl-check","mode":"batch","engine":"occupation-time(eps=1e-09)","jobs":1,"queries":2,"results":[{"name":"plain","query":"P=? (F[t<=2] doze)","kind":"numeric","value":0.99999670110030692,"states":[0.99999670110030692,0.99999414829848376,0.99999388991626148,0.99999247618168241,0.99999414985370527,0.999992643261916,0.99999354910022,0.99999226684266951,0.99999999953297447]},{"name":"sweep","query":"frontier[3] P>=0.3 ((call_idle | doze) U[t<=6][r<=600] call_initiated)","kind":"frontier","target":0.3,"time_bound":6,"reward_bound":600,"grid":3,"tolerance":1e-06,"evaluations":63,"points":[{"t":4,"r":105.84490701570557,"probability":0.30000000088674905},{"t":6,"r":105.83485197275877,"probability":0.30000000064211185}]}],"cache":{"path":{"lookups":64,"hits":0,"misses":64,"hit_rate":0},"reduced":{"lookups":1,"hits":0,"misses":1,"hit_rate":0},"reduction":{"lookups":63,"hits":62,"misses":1,"hit_rate":0.98412698412698407},"sat":{"lookups":130,"hits":125,"misses":5,"hit_rate":0.96153846153846156},"until":{"lookups":63,"hits":0,"misses":63,"hit_rate":0},"fox_glynn":{"lookups":190,"hits":186,"misses":4,"hit_rate":0.97894736842105268}}}

Malformed frontier specs fail fast with exit 2:

  $ csrl-check --model adhoc --frontier xml 'frontier[5] P>=0.3 ( doze U[t<=1][r<=2] call_initiated )'
  --frontier needs "json" or "csv", not "xml"
  [2]

  $ csrl-check --model adhoc --frontier csv 'P=? ( F[t<=2] doze )'
  --frontier needs a frontier query, e.g. 'frontier[20] P>=0.5 ( a U[t<=10][r<=50] b )'
  [2]

  $ csrl-check --model adhoc --frontier json --batch frontier-batch.json
  --frontier cannot be combined with --batch
  [2]

  $ csrl-check --model adhoc 'frontier P>=0.5 ( X[t<=1] doze )'
  parse error at position 32: frontier needs an 'until' (or 'F') path formula
  [2]

  $ csrl-check --model adhoc 'frontier P>=0.5 ( doze U[t<=1] call_initiated )'
  parse error at position 47: frontier needs finite downward-closed bounds ([t<=T][r<=R])
  [2]

  $ csrl-check --model adhoc 'frontier[0] P>=0.5 ( doze U[t<=1][r<=2] call_initiated )'
  parse error at position 10: frontier needs a positive whole number of points
  [2]

Numeric flags are validated before any work starts:

  $ csrl-check --model adhoc --epsilon 1.5 'true'
  --epsilon needs a value in (0,1)
  [2]

  $ csrl-check --model adhoc --jobs 0 'true'
  --jobs needs a positive count
  [2]
